"""Load generation and the BENCH_serve record pipeline.

Covers the layers of ``repro bench-load`` bottom-up: the nearest-rank
percentile math, record building/validation (positive and negative), the
``/proc`` resource monitor, the open- and closed-loop asyncio clients
against an in-process listener, and — once — the full CLI path with a
spawned ``serve --tcp`` subprocess writing a schema-valid record file.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os

import pytest

from repro.engine import QueryEngine, ResultCache
from repro.net import loadgen
from repro.net.listener import TCPQueryServer
from repro.net.monitor import ResourceMonitor, read_cpu_seconds, read_rss_bytes
from repro.net.results import (
    BENCH_KIND,
    BENCH_SCHEMA_VERSION,
    bench_file_name,
    build_bench_report,
    percentile,
    validate_bench_report,
    write_bench_report,
)
from repro.net.results import main as results_main
from repro.server import QueryServer


@pytest.fixture(autouse=True)
def fresh_process_cache():
    ResultCache.clear_process_cache()
    yield
    ResultCache.clear_process_cache()


@pytest.fixture
def imdb_factory(imdb_db):
    def factory(dataset, backend, db_path, shards, config):
        kwargs = {} if config is None else {"config": config}
        return QueryEngine(imdb_db, **kwargs)

    return factory


def _report(**overrides):
    """A valid baseline record the negative tests mutate."""
    record = build_bench_report(
        config={
            "mode": "closed",
            "dataset": "imdb",
            "backend": "memory",
            "connections": 2,
            "requests": 4,
            "rate": None,
            "k": 5,
            "seed": 13,
            "host": "127.0.0.1",
            "port": 1,
            "label": "unit",
        },
        latencies_ms=[1.0, 2.0, 3.0, 4.0],
        outcomes={"ok": 4, "overloaded": 0, "timeout": 0, "error": 0,
                  "transport_error": 0},
        duration_seconds=0.5,
        samples=[{"elapsed_seconds": 0.1, "cpu_percent": 50.0,
                  "rss_bytes": 1024}],
        started_at="2026-08-07T00:00:00+00:00",
    )
    record.update(overrides)
    return record


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        values = list(range(100))
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.95) == 95
        assert percentile(values, 0.99) == 99


class TestBenchRecord:
    def test_build_shape_and_validity(self):
        record = _report()
        assert record["schema_version"] == BENCH_SCHEMA_VERSION
        assert record["kind"] == BENCH_KIND
        assert record["throughput_qps"] == 8.0  # 4 answered / 0.5 s
        assert record["latency_ms"]["count"] == 4
        assert record["latency_ms"]["p50"] == 3.0
        assert record["latency_ms"]["max"] == 4.0
        assert record["resources"]["peak_rss_bytes"] == 1024
        assert validate_bench_report(record) == []

    @pytest.mark.parametrize(
        "mutate,needle",
        [
            (lambda r: r.update(schema_version=2), "schema_version"),
            (lambda r: r.update(kind="something"), "kind"),
            (lambda r: r.update(started_at=""), "started_at"),
            (lambda r: r["config"].update(mode="burst"), "config.mode"),
            (lambda r: r["config"].update(dataset=""), "config.dataset"),
            (lambda r: r.update(duration_seconds=-1), "duration_seconds"),
            (lambda r: r["outcomes"].update(ok=-1), "outcomes.ok"),
            (lambda r: r["outcomes"].update(ok=True), "outcomes.ok"),
            (lambda r: r["latency_ms"].update(p95=0.5), "percentiles"),
            (lambda r: r["resources"].pop("samples"), "samples"),
            (lambda r: r["resources"]["samples"][0].pop("rss_bytes"), "samples[0]"),
        ],
    )
    def test_violations_are_reported(self, mutate, needle):
        record = _report()
        mutate(record)
        errors = validate_bench_report(record)
        assert errors and any(needle in error for error in errors)

    def test_non_object_record(self):
        assert validate_bench_report([1, 2]) != []

    def test_file_name_slugs_labels(self):
        assert bench_file_name("closed memory/imdb") == (
            "BENCH_serve_closed-memory-imdb.json"
        )
        assert bench_file_name("///") == "BENCH_serve_run.json"

    def test_write_and_validate_round_trip(self, tmp_path):
        path = write_bench_report(_report(), tmp_path)
        assert path.name == "BENCH_serve_unit.json"
        assert validate_bench_report(json.loads(path.read_text())) == []


class TestResultsCLI:
    def test_valid_file_passes(self, tmp_path, capsys):
        path = write_bench_report(_report(), tmp_path)
        assert results_main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_file_fails(self, tmp_path, capsys):
        record = _report()
        record["kind"] = "wrong"
        path = tmp_path / "BENCH_serve_bad.json"
        path.write_text(json.dumps(record))
        assert results_main([str(path)]) == 1
        assert "violation" in capsys.readouterr().err

    def test_unreadable_file_fails(self, tmp_path):
        path = tmp_path / "BENCH_serve_missing.json"
        assert results_main([str(path)]) == 1

    def test_no_arguments_is_usage_error(self):
        assert results_main([]) == 2


class TestResultsDiff:
    """``--diff BASELINE CANDIDATE [--threshold PCT]`` — the regression gate."""

    def _pair(self, tmp_path, p50=2.0, p95=4.0, p99=4.0, duration=0.5):
        baseline = write_bench_report(_report(), tmp_path / "a")
        candidate = _report(duration_seconds=duration)
        candidate["throughput_qps"] = round(4 / duration, 3)
        candidate["latency_ms"].update(
            p50=p50, p95=p95, p99=p99, max=max(p99, candidate["latency_ms"]["max"])
        )
        (tmp_path / "b").mkdir(exist_ok=True)
        candidate_path = write_bench_report(candidate, tmp_path / "b")
        return str(baseline), str(candidate_path)

    @pytest.fixture(autouse=True)
    def _dirs(self, tmp_path):
        (tmp_path / "a").mkdir(exist_ok=True)

    def test_diff_rows_carry_signed_regression_percent(self):
        from repro.net.results import diff_bench_reports

        rows = diff_bench_reports(
            _report(), _report(throughput_qps=4.0)  # 8 qps -> 4 qps
        )
        by_metric = {row["metric"]: row for row in rows}
        assert by_metric["throughput_qps"]["regression_percent"] == 50.0
        assert by_metric["latency_ms.p50"]["regression_percent"] == 0.0

    def test_identical_records_pass_any_threshold(self, tmp_path):
        a, b = self._pair(tmp_path, p50=3.0, p95=4.0, p99=4.0)
        assert results_main(["--diff", a, b, "--threshold", "0"]) == 0

    def test_latency_regression_past_threshold_exits_one(self, tmp_path, capsys):
        a, b = self._pair(tmp_path, p50=9.0, p95=9.0, p99=9.0)
        assert results_main(["--diff", a, b, "--threshold", "50"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regressed" in captured.err

    def test_throughput_drop_past_threshold_exits_one(self, tmp_path):
        a, b = self._pair(tmp_path, p50=3.0, p95=4.0, p99=4.0, duration=2.0)
        assert results_main(["--diff", a, b, "--threshold", "20"]) == 1

    def test_no_threshold_reports_without_failing(self, tmp_path, capsys):
        a, b = self._pair(tmp_path, p50=99.0, p95=99.0, p99=99.0)
        assert results_main(["--diff", a, b]) == 0
        assert "worse" in capsys.readouterr().out

    def test_unreadable_input_exits_two(self, tmp_path):
        a, _ = self._pair(tmp_path)
        assert results_main(["--diff", a, str(tmp_path / "missing.json")]) == 2

    def test_invalid_record_exits_two(self, tmp_path):
        a, _ = self._pair(tmp_path)
        bad = tmp_path / "BENCH_serve_bad.json"
        record = _report()
        record["kind"] = "wrong"
        bad.write_text(json.dumps(record))
        assert results_main(["--diff", a, str(bad)]) == 2

    def test_diff_with_extra_paths_is_usage_error(self, tmp_path):
        a, b = self._pair(tmp_path)
        assert results_main(["--diff", a, b, a]) == 2


class TestResourceMonitor:
    def test_samples_own_process(self):
        if read_cpu_seconds(os.getpid()) is None:
            pytest.skip("no /proc on this platform")
        with ResourceMonitor(os.getpid(), interval=0.02) as monitor:
            deadline = os.times().elapsed + 0.2
            while os.times().elapsed < deadline:
                sum(i * i for i in range(1000))  # burn a little CPU
        assert monitor.samples, "expected at least one sample"
        for sample in monitor.samples:
            assert set(sample) == {"elapsed_seconds", "cpu_percent", "rss_bytes"}
            assert sample["rss_bytes"] > 0
            assert sample["cpu_percent"] >= 0.0

    def test_unknown_pid_degrades_to_empty(self):
        assert read_cpu_seconds(2**31 - 7) is None
        assert read_rss_bytes(2**31 - 7) is None
        monitor = ResourceMonitor(2**31 - 7, interval=0.01).start()
        import time

        time.sleep(0.05)
        assert monitor.stop() == []

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            ResourceMonitor(os.getpid(), interval=0)


@contextlib.asynccontextmanager
async def serving(factory):
    with QueryServer(max_workers=8, engine_factory=factory) as pool:
        tcp = TCPQueryServer(pool)
        await tcp.start()
        try:
            yield tcp.address
        finally:
            await tcp.drain()


@contextlib.asynccontextmanager
async def serving_http(factory):
    """TCP core + HTTP front end; yields the HTTP address."""
    from repro.net.http import HTTPQueryServer

    with QueryServer(max_workers=8, engine_factory=factory) as pool:
        tcp = TCPQueryServer(pool)
        await tcp.start()
        front = HTTPQueryServer(tcp)
        await front.start()
        try:
            yield front.address
        finally:
            await tcp.drain()


class TestLoadClients:
    def test_closed_loop_answers_everything(self, imdb_factory):
        async def drive():
            async with serving(imdb_factory) as (host, port):
                return await loadgen.run_closed_loop(
                    host, port, connections=4, requests=14, timeout=30
                )

        run = asyncio.run(drive())
        assert run.outcomes["ok"] == 14
        assert sum(run.outcomes.values()) == 14
        assert len(run.latencies_ms) == 14
        assert all(latency > 0 for latency in run.latencies_ms)
        assert run.duration_seconds > 0

    def test_open_loop_answers_everything(self, imdb_factory):
        async def drive():
            async with serving(imdb_factory) as (host, port):
                return await loadgen.run_open_loop(
                    host, port, rate=200.0, requests=10, timeout=30
                )

        run = asyncio.run(drive())
        assert run.outcomes["ok"] == 10
        assert len(run.latencies_ms) == 10

    def test_open_loop_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            asyncio.run(loadgen.run_open_loop("127.0.0.1", 1, rate=0))

    def test_closed_loop_http_transport(self, imdb_factory):
        async def drive():
            async with serving_http(imdb_factory) as (host, port):
                return await loadgen.run_closed_loop(
                    host, port, connections=4, requests=14, timeout=30,
                    transport="http",
                )

        run = asyncio.run(drive())
        assert run.outcomes["ok"] == 14
        assert len(run.latencies_ms) == 14

    def test_open_loop_http_transport(self, imdb_factory):
        async def drive():
            async with serving_http(imdb_factory) as (host, port):
                return await loadgen.run_open_loop(
                    host, port, rate=200.0, requests=10, timeout=30,
                    transport="http",
                )

        run = asyncio.run(drive())
        assert run.outcomes["ok"] == 10
        assert len(run.latencies_ms) == 10

    def test_unreachable_server_books_transport_errors(self):
        # A bound-then-closed socket guarantees nothing listens on the port.
        import socket

        sock = socket.create_server(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        run = asyncio.run(
            loadgen.run_closed_loop("127.0.0.1", port, connections=2, requests=6)
        )
        assert run.outcomes["transport_error"] == 6
        assert run.outcomes["ok"] == 0


class TestRoundtripReaderTask:
    """The fix for the leaked-reader regression: ``_roundtrip`` must never
    leave a pending read task behind, whatever failed and wherever."""

    @staticmethod
    def _pending_tasks():
        current = asyncio.current_task()
        return [
            task
            for task in asyncio.all_tasks()
            if task is not current and not task.done()
        ]

    def test_timeout_leaves_no_pending_reader_task(self):
        """A server that never answers: the client times out — and the
        response-reading task must be cancelled and awaited, not abandoned
        (``asyncio.shield`` protects it from ``wait_for``'s cancellation,
        so the ``finally`` cleanup is load-bearing)."""

        async def drive():
            mute = await asyncio.start_server(
                lambda reader, writer: None, "127.0.0.1", 0
            )
            host, port = mute.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            try:
                outcome, latency = await loadgen._roundtrip(
                    reader, writer, b'{"query": "x"}\n', 0.05
                )
                assert (outcome, latency) == ("transport_error", None)
                assert self._pending_tasks() == []
            finally:
                writer.close()
                mute.close()

        asyncio.run(drive())

    def test_write_error_mid_response_leaves_no_pending_reader_task(self):
        """A transport error while *writing* the request: the reader task
        was already started (servers can answer-and-close early) and must
        be cancelled in the ``finally``, not leaked."""

        class FailingWriter:
            def write(self, data):
                pass

            async def drain(self):
                raise ConnectionResetError("gone mid-write")

        async def drive():
            reader = asyncio.StreamReader()  # never fed: a read pends forever
            outcome, latency = await loadgen._roundtrip(
                reader, FailingWriter(), b'{"query": "x"}\n', 5, "tcp"
            )
            assert (outcome, latency) == ("transport_error", None)
            assert self._pending_tasks() == []

        asyncio.run(drive())

    def test_http_transport_cleans_up_too(self):
        async def drive():
            mute = await asyncio.start_server(
                lambda reader, writer: None, "127.0.0.1", 0
            )
            host, port = mute.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            try:
                outcome, _latency = await loadgen._roundtrip(
                    reader,
                    writer,
                    b"POST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
                    0.05,
                    "http",
                )
                assert outcome == "transport_error"
                assert self._pending_tasks() == []
            finally:
                writer.close()
                mute.close()

        asyncio.run(drive())


class TestBenchLoadEndToEnd:
    def test_cli_spawn_writes_schema_valid_record(self, tmp_path, capsys):
        """The CI smoke, in miniature: spawn, load, persist, validate."""
        from repro.cli import main as cli_main

        status = cli_main(
            [
                "bench-load",
                "--spawn",
                "--mode",
                "closed",
                "--connections",
                "4",
                "--requests",
                "24",
                "--label",
                "test-e2e",
                "--output-dir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "throughput" in out and "p95" in out
        path = tmp_path / bench_file_name("test-e2e")
        assert path.exists()
        record = json.loads(path.read_text())
        assert validate_bench_report(record) == []
        assert record["outcomes"]["ok"] == 24
        # --spawn knows the server pid, so resources must have been sampled
        # (on /proc platforms; the record is valid either way).
        assert record["config"]["mode"] == "closed"

    def test_cli_spawn_http_writes_schema_valid_record(self, tmp_path, capsys):
        """The HTTP transport end to end: spawn --http, load over POST
        /query, persist, validate — the record carries the transport."""
        from repro.cli import main as cli_main

        status = cli_main(
            [
                "bench-load",
                "--spawn",
                "--http",
                "--mode",
                "closed",
                "--connections",
                "4",
                "--requests",
                "24",
                "--label",
                "test-e2e-http",
                "--output-dir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "transport=http" in out
        record = json.loads((tmp_path / bench_file_name("test-e2e-http")).read_text())
        assert validate_bench_report(record) == []
        assert record["config"]["transport"] == "http"
        assert record["outcomes"]["ok"] == 24

    def test_run_bench_load_requires_known_mode(self):
        with pytest.raises(ValueError):
            loadgen.run_bench_load("127.0.0.1", 1, mode="burst", output_dir=None)

    def test_run_bench_load_requires_known_transport(self):
        with pytest.raises(ValueError):
            loadgen.run_bench_load(
                "127.0.0.1", 1, transport="carrier-pigeon", output_dir=None
            )
