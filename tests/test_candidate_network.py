"""Unit tests for repro.core.candidate_network (DISCOVER-style CNs)."""

from repro.core.candidate_network import enumerate_candidate_networks
from repro.core.keywords import KeywordQuery


class TestEnumeration:
    def test_finds_actor_movie_network(self, mini_db):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        cns = enumerate_candidate_networks(mini_db, q, max_joins=2)
        assert cns
        rendered = [str(cn) for cn in cns]
        assert any("actor:hanks" in r and "movie:2001" in r for r in rendered)

    def test_completeness_all_terms_covered(self, mini_db):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        for cn in enumerate_candidate_networks(mini_db, q, max_joins=2):
            assert cn.covered_terms == {"hanks", "2001"}

    def test_minimality_endpoints_non_free(self, mini_db):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        for cn in enumerate_candidate_networks(mini_db, q, max_joins=2):
            slots = {slot for _t, slot in cn.coverage}
            endpoints = set(cn.template.leaf_positions())
            assert endpoints <= slots

    def test_smallest_first(self, mini_db):
        q = KeywordQuery.from_terms(["hanks"])
        sizes = [cn.size for cn in enumerate_candidate_networks(mini_db, q, max_joins=2)]
        assert sizes == sorted(sizes)

    def test_single_keyword_single_table_cn(self, mini_db):
        q = KeywordQuery.from_terms(["london"])
        cns = enumerate_candidate_networks(mini_db, q, max_joins=1)
        assert any(cn.size == 0 for cn in cns)

    def test_absent_keywords_yield_nothing(self, mini_db):
        q = KeywordQuery.from_terms(["zzz"])
        assert enumerate_candidate_networks(mini_db, q, max_joins=2) == []

    def test_partially_absent_keyword_ignored(self, mini_db):
        """Terms with no occurrence are dropped (OR-completeness over the rest)."""
        q = KeywordQuery.from_terms(["hanks", "zzz"])
        cns = enumerate_candidate_networks(mini_db, q, max_joins=2)
        assert cns
        for cn in cns:
            assert cn.covered_terms == {"hanks"}

    def test_max_networks_cap(self, mini_db):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        cns = enumerate_candidate_networks(mini_db, q, max_joins=3, max_networks=2)
        assert len(cns) <= 2

    def test_schema_term_tables_count_as_non_free(self, mini_db):
        q = KeywordQuery.from_terms(["actor"])
        cns = enumerate_candidate_networks(mini_db, q, max_joins=1)
        assert any("actor" in cn.template.path for cn in cns)

    def test_deterministic(self, mini_db):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        a = [str(cn) for cn in enumerate_candidate_networks(mini_db, q, max_joins=2)]
        b = [str(cn) for cn in enumerate_candidate_networks(mini_db, q, max_joins=2)]
        assert a == b
