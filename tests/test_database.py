"""Unit tests for repro.db.database (facade + join-path execution)."""

import pytest

from repro.db.errors import UnknownTableError
from repro.db.schema import Attribute, Schema, Table


class TestBasics:
    def test_insert_and_relation(self, mini_db):
        assert len(mini_db.relation("actor")) == 3
        assert len(mini_db.relation("movie")) == 3
        assert len(mini_db.relation("acts")) == 4

    def test_total_tuples(self, mini_db):
        assert mini_db.total_tuples() == 10

    def test_unknown_relation(self, mini_db):
        with pytest.raises(UnknownTableError):
            mini_db.relation("ghost")

    def test_insert_many(self, mini_db):
        rows = mini_db.insert_many("actor", [{"id": 10, "name": "x"}, {"id": 11, "name": "y"}])
        assert len(rows) == 2

    def test_add_table(self, mini_db):
        mini_db.add_table(Table("genre", [Attribute("name")]))
        assert "genre" in mini_db.schema

    def test_require_index_builds_once(self, mini_db):
        idx1 = mini_db.require_index()
        idx2 = mini_db.require_index()
        assert idx1 is idx2


class TestSelect:
    def test_select_single_term(self, mini_db):
        rows = mini_db.select("actor", [("name", ("hanks",))])
        assert {t.key for t in rows} == {1, 2}

    def test_select_conjunctive_terms(self, mini_db):
        rows = mini_db.select("actor", [("name", ("tom", "hanks"))])
        assert {t.key for t in rows} == {1}

    def test_select_no_match(self, mini_db):
        assert mini_db.select("actor", [("name", ("zzz",))]) == []

    def test_select_no_selections_scans(self, mini_db):
        assert len(mini_db.select("actor", [])) == 3

    def test_select_multiple_attributes(self, mini_db):
        rows = mini_db.select("movie", [("title", ("london",)), ("year", ("2001",))])
        assert {t.key for t in rows} == {3}


class TestExecutePath:
    def _actor_movie(self, db):
        schema = db.schema
        e1 = schema.join_edges("actor", "acts")[0]
        e2 = schema.join_edges("acts", "movie")[0]
        return ["actor", "acts", "movie"], [e1, e2]

    def test_join_path_all_rows(self, mini_db):
        path, edges = self._actor_movie(mini_db)
        rows = mini_db.execute_path(path, edges)
        assert len(rows) == 4  # one per acts row

    def test_join_respects_selection_on_first(self, mini_db):
        path, edges = self._actor_movie(mini_db)
        rows = mini_db.execute_path(path, edges, {0: [("name", ("tom",))]})
        assert {r[0].key for r in rows} == {1}
        assert len(rows) == 2  # tom hanks acted in two movies

    def test_join_selection_both_ends(self, mini_db):
        path, edges = self._actor_movie(mini_db)
        rows = mini_db.execute_path(
            path, edges, {0: [("name", ("hanks",))], 2: [("year", ("2001",))]}
        )
        # hanks (tom or colin) in a 2001 movie -> movie 2, two actors
        assert {r[2].key for r in rows} == {2}
        assert len(rows) == 2

    def test_rows_aligned_with_path(self, mini_db):
        path, edges = self._actor_movie(mini_db)
        for row in mini_db.execute_path(path, edges):
            assert row[0].table == "actor"
            assert row[1].table == "acts"
            assert row[2].table == "movie"

    def test_limit(self, mini_db):
        path, edges = self._actor_movie(mini_db)
        assert len(mini_db.execute_path(path, edges, limit=2)) == 2

    def test_count_and_has_results(self, mini_db):
        path, edges = self._actor_movie(mini_db)
        sel = {0: [("name", ("london",))]}
        assert mini_db.count_path(path, edges, sel) == 1
        assert mini_db.has_results(path, edges, sel)
        assert not mini_db.has_results(path, edges, {0: [("name", ("zzz",))]})

    def test_arity_mismatch(self, mini_db):
        path, edges = self._actor_movie(mini_db)
        with pytest.raises(ValueError):
            mini_db.execute_path(path, edges[:1])

    def test_single_table_path(self, mini_db):
        rows = mini_db.execute_path(["actor"], [], {0: [("name", ("london",))]})
        assert len(rows) == 1
        assert rows[0][0].key == 3

    def test_self_join_palindrome_path(self, mini_db):
        """actor |x| acts |x| movie |x| acts |x| actor finds co-stars."""
        schema = mini_db.schema
        e1 = schema.join_edges("actor", "acts")[0]
        e2 = schema.join_edges("acts", "movie")[0]
        path = ["actor", "acts", "movie", "acts", "actor"]
        edges = [e1, e2, e2, e1]
        rows = mini_db.execute_path(
            path, edges, {0: [("name", ("tom",))], 4: [("name", ("colin",))]}
        )
        assert len(rows) == 1
        assert rows[0][2].key == 2  # the shared movie

    def test_wrong_edge_raises(self, mini_db):
        schema = mini_db.schema
        e1 = schema.join_edges("actor", "acts")[0]
        with pytest.raises(ValueError):
            mini_db.execute_path(["actor", "movie"], [e1])


def test_fk_indexes_built():
    schema = Schema()
    schema.add_table(Table("a", ["x"]))
    schema.add_table(Table("b", ["y"]))
    schema.link("b", "a")
    from repro.db.database import Database

    db = Database(schema)
    db.insert("a", {"id": 1, "x": "one"})
    db.insert("b", {"id": 1, "a_id": 1, "y": "two"})
    db.build_indexes()
    assert db.relation("b").lookup("a_id", 1)[0].key == 1
