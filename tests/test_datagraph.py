"""Unit tests for repro.db.datagraph."""

from repro.db.datagraph import DataGraph


class TestDataGraph:
    def test_node_count(self, mini_db):
        dg = DataGraph(mini_db)
        assert dg.node_count() == mini_db.total_tuples()

    def test_edges_follow_fks(self, mini_db):
        dg = DataGraph(mini_db)
        # acts row 1 links actor 1 and movie 1.
        assert dg.graph.has_edge(("acts", 1), ("actor", 1))
        assert dg.graph.has_edge(("acts", 1), ("movie", 1))
        assert not dg.graph.has_edge(("actor", 1), ("movie", 1))

    def test_edge_count(self, mini_db):
        dg = DataGraph(mini_db)
        # 4 acts rows x 2 foreign keys each.
        assert dg.edge_count() == 8

    def test_neighbors(self, mini_db):
        dg = DataGraph(mini_db)
        neighbors = set(dg.neighbors(("actor", 1)))
        assert neighbors == {("acts", 1), ("acts", 2)}

    def test_keyword_nodes(self, mini_db):
        dg = DataGraph(mini_db)
        nodes = dg.keyword_nodes("hanks")
        assert ("actor", 1) in nodes
        assert ("actor", 2) in nodes
        assert ("movie", 2) in nodes

    def test_keyword_nodes_absent_term(self, mini_db):
        assert DataGraph(mini_db).keyword_nodes("zzz") == set()

    def test_null_fk_skipped(self, mini_db):
        mini_db.insert("acts", {"id": 99, "actor_id": None, "movie_id": 1, "role": "x"})
        dg = DataGraph(mini_db)
        # The dangling row connects only to the movie side.
        assert set(dg.neighbors(("acts", 99))) == {("movie", 1)}
