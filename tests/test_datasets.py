"""Unit tests for the synthetic dataset generators and workloads."""

import pytest

from repro.core.generator import InterpretationGenerator
from repro.datasets.freebase import build_freebase, domain_names, freebase_workload
from repro.datasets.imdb import build_imdb
from repro.datasets.lyrics import build_lyrics
from repro.datasets.simulation import generate_simulation, run_greedy_simulation
from repro.datasets.workload import imdb_workload, lyrics_workload, train_catalog_from_workload
from repro.db.tokenizer import tokenize


class TestImdb:
    def test_seven_tables(self, imdb_db):
        assert len(imdb_db.schema) == 7

    def test_deterministic(self):
        a = build_imdb(seed=3, n_movies=10, n_actors=8, n_directors=3, n_companies=2)
        b = build_imdb(seed=3, n_movies=10, n_actors=8, n_directors=3, n_companies=2)
        assert a.total_tuples() == b.total_tuples()
        assert a.relation("actor").get(0).get("name") == b.relation("actor").get(0).get("name")

    def test_relationships_reference_entities(self, imdb_db):
        for row in imdb_db.relation("acts"):
            assert imdb_db.relation("actor").get(row.get("actor_id")) is not None
            assert imdb_db.relation("movie").get(row.get("movie_id")) is not None

    def test_index_built(self, imdb_db):
        assert imdb_db.index is not None
        assert imdb_db.index.vocabulary()

    def test_ambiguity_present(self, imdb_db):
        """At least one surname occurs both as a person and in movie text."""
        idx = imdb_db.require_index()
        ambiguous = [
            term
            for term in idx.vocabulary()
            if idx.df(term, "actor") > 0 and idx.df(term, "movie") > 0
        ]
        assert ambiguous


class TestLyrics:
    def test_five_tables(self, lyrics_db):
        assert len(lyrics_db.schema) == 5

    def test_chain_schema(self, lyrics_db):
        paths = lyrics_db.schema.join_paths(4)
        assert ("artist", "artist_album", "album", "album_song", "song") in paths or (
            "song",
            "album_song",
            "album",
            "artist_album",
            "artist",
        ) in paths

    def test_every_album_has_artist(self, lyrics_db):
        album_ids = {row.get("album_id") for row in lyrics_db.relation("artist_album")}
        assert album_ids == set(lyrics_db.relation("album").keys())


class TestWorkloads:
    def test_imdb_workload_ground_truth_resolvable(self, imdb_db):
        workload = imdb_workload(imdb_db, n_queries=10)
        assert workload
        gen = InterpretationGenerator(imdb_db, max_template_joins=4)
        resolved = 0
        for item in workload:
            space = gen.interpretations(item.query)
            if any(item.intended.matches(i) for i in space):
                resolved += 1
        assert resolved >= len(workload) * 0.8

    def test_lyrics_workload_nonempty(self, lyrics_db):
        assert lyrics_workload(lyrics_db, n_queries=8)

    def test_workload_queries_unique(self, imdb_db):
        workload = imdb_workload(imdb_db, n_queries=15)
        texts = [str(w.query) for w in workload]
        assert len(texts) == len(set(texts))

    def test_workload_kinds(self, imdb_db):
        workload = imdb_workload(imdb_db, n_queries=20, mc_fraction=0.5)
        kinds = {w.kind for w in workload}
        assert kinds <= {"sc", "mc"}
        assert len(kinds) == 2

    def test_keywords_exist_in_db(self, imdb_db):
        idx = imdb_db.require_index()
        for item in imdb_workload(imdb_db, n_queries=10):
            for term in item.query.terms:
                assert idx.tables_containing(term)

    def test_train_catalog(self, imdb_db):
        gen = InterpretationGenerator(imdb_db, max_template_joins=4)
        from repro.core.probability import TemplateCatalog

        catalog = TemplateCatalog(gen.templates)
        workload = imdb_workload(imdb_db, n_queries=10)
        train_catalog_from_workload(catalog, gen.templates, workload)
        assert catalog.has_log


class TestFreebase:
    def test_domain_names_unique(self):
        names = domain_names(120)
        assert len(names) == 120
        assert len(set(names)) == 120

    def test_seven_tables_per_domain(self, freebase_instance):
        assert len(freebase_instance.database.schema) == 7 * len(freebase_instance.domains)

    def test_ontology_levels(self, freebase_instance):
        o = freebase_instance.ontology
        assert o.depth() == 3  # Thing -> type -> area -> domain
        assert "Person" in o

    def test_every_textual_attribute_assigned(self, freebase_instance):
        o = freebase_instance.ontology
        for table in freebase_instance.database.schema:
            for attr in table.textual_attributes():
                assert o.concept_of_attribute(table.name, attr.name) is not None

    def test_workload_two_and_three_keywords(self, freebase_instance):
        two = freebase_workload(freebase_instance, n_queries=4, n_keywords=2)
        three = freebase_workload(freebase_instance, n_queries=4, n_keywords=3)
        assert all(len(w.query) == 2 for w in two)
        assert all(len(w.query) == 3 for w in three)

    def test_invalid_keyword_count(self, freebase_instance):
        with pytest.raises(ValueError):
            freebase_workload(freebase_instance, n_keywords=4)

    def test_domains_are_disjoint_components(self, freebase_instance):
        import networkx as nx

        g = freebase_instance.database.schema.graph()
        components = list(nx.connected_components(g))
        assert len(components) == len(freebase_instance.domains)


class TestSimulation:
    def test_space_growth_with_tables(self):
        small = generate_simulation(n_tables=5, n_keywords=3, seed=31)
        large = generate_simulation(n_tables=40, n_keywords=3, seed=31)
        assert large.theoretical_queries > small.theoretical_queries

    def test_space_growth_with_keywords(self):
        short = generate_simulation(n_tables=10, n_keywords=2, seed=37)
        long = generate_simulation(n_tables=10, n_keywords=8, seed=37)
        assert long.theoretical_queries > short.theoretical_queries * 10

    def test_enumeration_capped(self):
        space = generate_simulation(n_tables=10, n_keywords=8, seed=37, max_queries=500)
        assert space.n_queries <= 600  # cap is per template, small slack

    def test_option_matrix_shape(self):
        space = generate_simulation(n_tables=8, n_keywords=3, seed=5)
        assert space.option_matrix.shape == (space.n_options, space.n_queries)

    def test_probabilities_normalized(self):
        space = generate_simulation(n_tables=8, n_keywords=3, seed=5)
        assert space.probabilities().sum() == pytest.approx(1.0)

    def test_greedy_run_resolves(self):
        space = generate_simulation(n_tables=10, n_keywords=3, seed=31)
        run = run_greedy_simulation(space, seed=99, threshold=20)
        assert run.steps > 0
        assert run.resolved  # the intended query survives every pruning
        assert run.remaining >= 1

    def test_steps_grow_sublinearly(self):
        """The Table 3.2 shape: queries explode, steps stay modest."""
        small = generate_simulation(n_tables=10, n_keywords=3, seed=31)
        large = generate_simulation(n_tables=40, n_keywords=3, seed=31)
        steps_small = run_greedy_simulation(small, seed=7).steps
        steps_large = run_greedy_simulation(large, seed=7).steps
        growth_queries = large.theoretical_queries / max(small.theoretical_queries, 1)
        growth_steps = steps_large / max(steps_small, 1)
        assert growth_steps < growth_queries

    def test_deterministic(self):
        a = generate_simulation(n_tables=8, n_keywords=3, seed=11)
        b = generate_simulation(n_tables=8, n_keywords=3, seed=11)
        assert a.theoretical_queries == b.theoretical_queries
        assert (a.option_matrix == b.option_matrix).all()
