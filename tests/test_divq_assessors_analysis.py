"""Unit tests for repro.divq.assessors and repro.divq.analysis."""

import pytest

from repro.divq.analysis import (
    max_and_average_ratio_profile,
    probability_ratios,
    query_ambiguity_entropy,
)
from repro.divq.assessors import AssessorPool, agreement_kappa, simulate_assessments


class TestAssessorPool:
    def test_scores_in_unit_interval(self):
        scores = simulate_assessments([0.5, 0.3, 0.2], intended_index=0)
        assert all(0.0 <= s <= 1.0 for s in scores)

    def test_intended_scores_high(self):
        scores = simulate_assessments([0.5, 0.3, 0.2], intended_index=1)
        assert scores[1] >= 0.7

    def test_probable_scores_above_floor(self):
        scores = simulate_assessments([0.9, 0.05, 0.05])
        assert scores[0] > scores[2]

    def test_deterministic_given_seed(self):
        a = simulate_assessments([0.5, 0.3, 0.2], 0, AssessorPool(seed=5))
        b = simulate_assessments([0.5, 0.3, 0.2], 0, AssessorPool(seed=5))
        assert a == b

    def test_empty(self):
        assert simulate_assessments([]) == []

    def test_graded_disagreement_present(self):
        """Ambiguous interpretations should get non-unanimous judgments."""
        scores = simulate_assessments([0.4, 0.3, 0.2, 0.1], intended_index=None)
        assert any(0.0 < s < 1.0 for s in scores)

    def test_plausibility_floor(self):
        pool = AssessorPool(floor=0.05)
        assert pool.plausibility(0.0, 1.0) == 0.05
        assert pool.plausibility(0.5, 0.0) == 0.05


class TestKappa:
    def test_perfect_agreement(self):
        judgments = [[True, False], [True, False]]
        assert agreement_kappa(judgments) == pytest.approx(1.0)

    def test_single_assessor(self):
        assert agreement_kappa([[True, False]]) == 1.0

    def test_empty(self):
        assert agreement_kappa([]) == 1.0

    def test_disagreement_lowers_kappa(self):
        agree = [[True, False, True], [True, False, True]]
        disagree = [[True, False, True], [False, True, False]]
        assert agreement_kappa(disagree) < agreement_kappa(agree)


class TestAnalysis:
    def test_entropy_selects_ambiguous(self):
        flat = query_ambiguity_entropy([0.25, 0.25, 0.25, 0.25])
        peaked = query_ambiguity_entropy([0.97, 0.01, 0.01, 0.01])
        assert flat > peaked

    def test_entropy_empty(self):
        assert query_ambiguity_entropy([]) == 0.0

    def test_probability_ratios_definition(self):
        ratios = probability_ratios([0.5, 0.3, 0.2])
        assert ratios[0] == pytest.approx(0.3 / 0.5)
        assert ratios[1] == pytest.approx(0.2 / 0.8)

    def test_ratios_fall_for_peaked_distributions(self):
        ratios = probability_ratios([0.9, 0.05, 0.03, 0.02])
        assert ratios[0] < 0.1

    def test_profile_shapes(self):
        max_pr, avg_pr = max_and_average_ratio_profile(
            [[0.5, 0.3, 0.2], [0.6, 0.4]], max_rank=5
        )
        assert len(max_pr) == len(avg_pr) == 4
        for m, a in zip(max_pr, avg_pr):
            assert m >= a

    def test_profile_empty(self):
        max_pr, avg_pr = max_and_average_ratio_profile([], max_rank=3)
        assert max_pr == [0.0, 0.0] and avg_pr == [0.0, 0.0]
