"""Unit tests for repro.divq.diversify (Alg. 4.1)."""

import pytest

from repro.divq.diversify import diversify


def sim_from_matrix(matrix):
    def sim(a, b):
        return matrix[a][b]

    return sim


@pytest.fixture
def redundant_ranking():
    """Items 0 and 1 are near-duplicates; 2 is distinct but less relevant."""
    matrix = {
        0: {0: 1.0, 1: 0.9, 2: 0.0},
        1: {0: 0.9, 1: 1.0, 2: 0.0},
        2: {0: 0.0, 1: 0.0, 2: 1.0},
    }
    ranked = [(0, 0.5), (1, 0.4), (2, 0.1)]
    return ranked, sim_from_matrix(matrix)


class TestDiversify:
    def test_most_relevant_always_first(self, redundant_ranking):
        ranked, sim = redundant_ranking
        result = diversify(ranked, k=3, tradeoff=0.5, similarity=sim)
        assert result.selected[0] == 0

    def test_novelty_promotes_distinct_item(self, redundant_ranking):
        ranked, sim = redundant_ranking
        result = diversify(ranked, k=2, tradeoff=0.1, similarity=sim)
        assert result.selected == [0, 2]

    def test_pure_relevance_keeps_order(self, redundant_ranking):
        ranked, sim = redundant_ranking
        result = diversify(ranked, k=3, tradeoff=1.0, similarity=sim)
        assert result.selected == [0, 1, 2]

    def test_k_zero(self, redundant_ranking):
        ranked, sim = redundant_ranking
        assert diversify(ranked, k=0, tradeoff=0.5, similarity=sim).selected == []

    def test_k_larger_than_input(self, redundant_ranking):
        ranked, sim = redundant_ranking
        result = diversify(ranked, k=10, tradeoff=0.5, similarity=sim)
        assert sorted(result.selected) == [0, 1, 2]

    def test_empty_input(self):
        assert diversify([], k=3, tradeoff=0.5, similarity=lambda a, b: 0).selected == []

    def test_invalid_tradeoff(self, redundant_ranking):
        ranked, sim = redundant_ranking
        with pytest.raises(ValueError):
            diversify(ranked, k=2, tradeoff=1.5, similarity=sim)

    def test_negative_relevance_rejected(self):
        with pytest.raises(ValueError):
            diversify([("a", -0.1)], k=1, tradeoff=0.5, similarity=lambda a, b: 0)

    def test_no_duplicates_in_output(self, redundant_ranking):
        ranked, sim = redundant_ranking
        result = diversify(ranked, k=3, tradeoff=0.3, similarity=sim)
        assert len(result.selected) == len(set(result.selected))

    def test_relevance_aligned_with_selection(self, redundant_ranking):
        ranked, sim = redundant_ranking
        rel_by_item = dict(ranked)
        result = diversify(ranked, k=3, tradeoff=0.3, similarity=sim)
        for item, rel in zip(result.selected, result.relevance):
            assert rel == rel_by_item[item]

    def test_pruning_reduces_similarity_computations(self):
        """The upper-bound break of Alg. 4.1: with lambda=1 no later
        candidate can beat the current best, so few similarities are computed."""
        n = 40
        ranked = [(i, 1.0 / (i + 1)) for i in range(n)]
        calls = {"n": 0}

        def sim(a, b):
            calls["n"] += 1
            return 0.0

        result = diversify(ranked, k=5, tradeoff=1.0, similarity=sim)
        exhaustive_bound = n * 5
        assert result.similarity_computations < exhaustive_bound
        assert result.selected == [0, 1, 2, 3, 4]

    def test_instrumentation_counters(self, redundant_ranking):
        ranked, sim = redundant_ranking
        result = diversify(ranked, k=3, tradeoff=0.5, similarity=sim)
        assert result.similarity_computations > 0
        assert result.candidates_scanned > 0

    def test_default_similarity_requires_interpretations(self):
        with pytest.raises(TypeError):
            diversify([("plain", 1.0), ("items", 0.5)], k=2, tradeoff=0.5)
