"""Unit tests for repro.divq.metrics (alpha-nDCG-W, WS-recall)."""

import pytest

from collections import Counter

from repro.divq.metrics import (
    alpha_ndcg_w,
    overlap_penalty_exponent,
    s_recall,
    subtopic_relevance,
    ws_recall,
)


def entries(*specs):
    """Each spec: (relevance, iterable of keys)."""
    return [(rel, frozenset(keys)) for rel, keys in specs]


class TestOverlapPenalty:
    def test_no_previous_results(self):
        assert overlap_penalty_exponent(frozenset({"a", "b"}), Counter()) == 0

    def test_counts_repeats(self):
        seen = Counter({"a": 2, "b": 1})
        assert overlap_penalty_exponent(frozenset({"a", "b", "c"}), seen) == 3


class TestAlphaNdcgW:
    def test_alpha_zero_is_plain_ndcg(self):
        e = entries((1.0, {"a"}), (0.5, {"a"}))
        # With alpha=0 overlap is ignored: the descending-relevance order is
        # ideal, so the metric is exactly 1.
        assert alpha_ndcg_w(e, alpha=0.0, k=2) == pytest.approx(1.0)

    def test_redundancy_penalized_at_high_alpha(self):
        redundant = entries((1.0, {"a"}), (0.9, {"a"}))
        diverse = entries((1.0, {"a"}), (0.9, {"b"}))
        assert alpha_ndcg_w(diverse, 0.99, 2, ideal_entries=diverse) > alpha_ndcg_w(
            redundant, 0.99, 2, ideal_entries=diverse
        )

    def test_value_in_unit_interval(self):
        e = entries((0.9, {"a", "b"}), (0.5, {"b"}), (0.2, {"c"}))
        for alpha in (0.0, 0.5, 0.99):
            for k in (1, 2, 3):
                v = alpha_ndcg_w(e, alpha, k)
                assert 0.0 <= v <= 1.0

    def test_empty_entries(self):
        assert alpha_ndcg_w([], 0.5, 5) == 0.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            alpha_ndcg_w(entries((1.0, {"a"})), alpha=2.0)

    def test_k_defaults_to_length(self):
        e = entries((1.0, {"a"}), (0.5, {"b"}))
        assert alpha_ndcg_w(e, 0.5) == alpha_ndcg_w(e, 0.5, k=2)

    def test_ideal_pool_separate_from_ranking(self):
        system = entries((0.2, {"c"}), (1.0, {"a"}))
        ideal = entries((1.0, {"a"}), (0.2, {"c"}))
        v = alpha_ndcg_w(system, 0.0, 2, ideal_entries=ideal)
        assert v < 1.0  # system put the weak result first

    def test_zero_relevance_everywhere(self):
        e = entries((0.0, {"a"}), (0.0, {"b"}))
        assert alpha_ndcg_w(e, 0.5, 2) == 0.0


class TestSubtopicRelevance:
    def test_max_over_interpretations(self):
        e = entries((0.9, {"a", "b"}), (0.5, {"b", "c"}))
        rel = subtopic_relevance(e)
        assert rel == {"a": 0.9, "b": 0.9, "c": 0.5}

    def test_empty(self):
        assert subtopic_relevance([]) == {}


class TestWsRecall:
    def test_full_coverage_is_one(self):
        e = entries((1.0, {"a"}), (0.5, {"b"}))
        assert ws_recall(e, k=2) == pytest.approx(1.0)

    def test_partial_coverage_weighted(self):
        e = entries((1.0, {"a"}), (0.5, {"b"}))
        # Top-1 covers "a" (weight 1.0) of total 1.5.
        assert ws_recall(e, k=1) == pytest.approx(1.0 / 1.5)

    def test_monotone_in_k(self):
        e = entries((1.0, {"a"}), (0.5, {"b"}), (0.2, {"c"}))
        values = [ws_recall(e, k) for k in range(4)]
        assert values == sorted(values)

    def test_explicit_universe(self):
        e = entries((1.0, {"a"}),)
        universe = {"a": 1.0, "b": 1.0}
        assert ws_recall(e, 1, universe) == pytest.approx(0.5)

    def test_k_zero(self):
        assert ws_recall(entries((1.0, {"a"})), 0) == 0.0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            ws_recall(entries((1.0, {"a"})), -1)

    def test_empty_universe(self):
        assert ws_recall([], 3) == 0.0

    def test_binary_relevance_equals_s_recall(self):
        e = entries((1.0, {"a"}), (1.0, {"b"}), (1.0, {"a", "c"}))
        for k in (1, 2, 3):
            assert ws_recall(e, k) == pytest.approx(s_recall(e, k))

    def test_graded_beats_binary_for_heavy_subtopics(self):
        """A heavy subtopic covered early pushes WS-recall above S-recall."""
        e = entries((1.0, {"heavy"}), (0.1, {"light"}))
        assert ws_recall(e, 1) > s_recall(e, 1)
