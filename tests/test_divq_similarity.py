"""Unit tests for repro.divq.similarity (Eq. 4.3)."""

import pytest

from repro.core.interpretation import ValueAtom
from repro.core.keywords import Keyword
from repro.divq.similarity import jaccard_atoms, jaccard_similarity

A = ValueAtom(Keyword(0, "hanks"), "actor", "name")
B = ValueAtom(Keyword(1, "2001"), "movie", "year")
C = ValueAtom(Keyword(0, "hanks"), "movie", "title")


class TestJaccardAtoms:
    def test_identical(self):
        assert jaccard_atoms(frozenset([A, B]), frozenset([A, B])) == 1.0

    def test_disjoint(self):
        assert jaccard_atoms(frozenset([A]), frozenset([C])) == 0.0

    def test_partial_overlap(self):
        assert jaccard_atoms(frozenset([A, B]), frozenset([A, C])) == pytest.approx(1 / 3)

    def test_empty_sets_identical(self):
        assert jaccard_atoms(frozenset(), frozenset()) == 1.0

    def test_symmetric(self):
        x, y = frozenset([A, B]), frozenset([A, C])
        assert jaccard_atoms(x, y) == jaccard_atoms(y, x)

    def test_range(self):
        assert 0.0 <= jaccard_atoms(frozenset([A]), frozenset([A, B, C])) <= 1.0


class TestJaccardSimilarity:
    def test_same_bindings_different_templates_are_similar(
        self, mini_generator, mini_model
    ):
        """Interpretations sharing all keyword bindings have similarity 1
        even under different join paths — they retrieve overlapping results."""
        from repro.core.keywords import KeywordQuery

        q = KeywordQuery.from_terms(["hanks", "2001"])
        space = mini_generator.interpretations(q)
        by_atoms = {}
        for interp in space:
            by_atoms.setdefault(interp.atoms, []).append(interp)
        for group in by_atoms.values():
            if len(group) >= 2:
                assert jaccard_similarity(group[0], group[1]) == 1.0
                return
        # If no template pair shares atoms in this space, the property holds
        # vacuously; assert the space itself was non-trivial.
        assert space
