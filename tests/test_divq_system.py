"""Unit tests for the DivQ system facade."""

import pytest

from repro.core.keywords import KeywordQuery
from repro.divq.system import DivQ


@pytest.fixture(scope="module")
def divq(imdb_db):
    return DivQ(imdb_db, tradeoff=0.1)


class TestDivQFacade:
    def test_ranked_interpretations_nonempty_pool(self, divq, imdb_db):
        from repro.datasets.workload import imdb_workload

        item = imdb_workload(imdb_db, n_queries=5)[0]
        ranked = divq.ranked_interpretations(item.query)
        assert ranked
        assert len(ranked) <= divq.pool_size
        for interp, p in ranked:
            assert p > 0.0
            assert interp.to_structured_query().has_results(imdb_db)

    def test_search_returns_k(self, divq, imdb_db):
        from repro.datasets.workload import imdb_workload

        item = imdb_workload(imdb_db, n_queries=5)[0]
        result = divq.search(item.query, k=3)
        assert 0 < len(result.selected) <= 3

    def test_most_relevant_first(self, divq, imdb_db):
        from repro.datasets.workload import imdb_workload

        item = imdb_workload(imdb_db, n_queries=5)[0]
        ranked = divq.ranked_interpretations(item.query)
        result = divq.search(item.query, k=3)
        assert result.selected[0].describe() == ranked[0][0].describe()

    def test_materialize_rows(self, divq, imdb_db):
        from repro.datasets.workload import imdb_workload

        item = imdb_workload(imdb_db, n_queries=5)[0]
        materialized = divq.materialize(item.query, k=3, limit_per_interpretation=5)
        assert materialized
        for interp, rows in materialized:
            assert rows, f"{interp} should have results (pool is non-empty only)"
            assert len(rows) <= 5

    def test_unknown_query_empty(self, divq):
        result = divq.search(KeywordQuery.from_terms(["zzzzz"]), k=3)
        assert result.selected == []
