"""Edge cases and failure injection across modules.

These tests target the corners the main suites do not: degenerate models,
dangling foreign keys, empty frontiers, adversarial user answers, and
self-inconsistent inputs — the library must degrade gracefully, not crash.
"""

import pytest

from repro.core.generator import GeneratorConfig, InterpretationGenerator
from repro.core.hierarchy import QueryHierarchy
from repro.core.keywords import KeywordQuery
from repro.core.options import AtomSetOption
from repro.core.probability import ATFModel, TemplateCatalog, UniformModel
from repro.db.database import Database
from repro.db.schema import Attribute, Schema, Table
from repro.iqp.session import ConstructionSession
from repro.user.oracle import IntendedInterpretation, SimulatedUser, value_spec


class _ZeroModel:
    """Adversarial model: zero weight for everything."""

    def atom_weight(self, atom, template):
        return 0.0

    def template_prior(self, template):
        return 0.0

    def interpretation_weight(self, interpretation):
        return 0.0


class _LyingUser(SimulatedUser):
    """Answers the opposite of the truth — construction must still terminate."""

    def evaluate(self, option) -> bool:
        truthful = super().evaluate(option)
        # Flip the bookkeeping too, so counters stay consistent.
        if truthful:
            self.accepted.pop()
            self.rejected.append(option)
        else:
            self.rejected.pop()
            self.accepted.append(option)
        return not truthful


HANKS_2001 = KeywordQuery.from_terms(["hanks", "2001"])
INTENDED = IntendedInterpretation(
    bindings={0: value_spec("actor", "name"), 1: value_spec("movie", "year")},
    template_path=("actor", "acts", "movie"),
)


class TestDegenerateModels:
    def test_zero_weight_model_still_constructs(self, mini_generator):
        """All-zero weights fall back to uniform probabilities (normalize)."""
        user = SimulatedUser(INTENDED)
        session = ConstructionSession(HANKS_2001, mini_generator, _ZeroModel())
        result = session.run(user)
        assert result.success

    def test_zero_weight_hierarchy_probabilities(self, mini_generator):
        h = QueryHierarchy(HANKS_2001, mini_generator, _ZeroModel())
        h.expand_to_complete()
        probs = h.frontier_probabilities()
        assert probs and abs(sum(probs) - 1.0) < 1e-9


class TestAdversarialUser:
    def test_lying_user_terminates(self, mini_generator, mini_model):
        user = _LyingUser(INTENDED)
        session = ConstructionSession(HANKS_2001, mini_generator, mini_model, max_steps=50)
        result = session.run(user)
        # The dialogue must end; with consistently wrong answers the
        # intended interpretation is (correctly) not in the shortlist.
        assert result.options_evaluated <= 50

    def test_contradictory_prunes_empty(self, mini_generator, mini_model):
        """Rejecting every option empties the frontier without crashing."""
        h = QueryHierarchy(HANKS_2001, mini_generator, mini_model)
        h.expand_to_complete()
        for option in list(h.frontier_atoms()):
            h.reject(option)
            if not h.frontier:
                break
        assert len(h) == 0
        assert h.frontier_probabilities() == []


class TestDanglingData:
    def test_dangling_fk_join_skips_row(self):
        schema = Schema()
        schema.add_table(Table("a", [Attribute("x")]))
        schema.add_table(Table("b", [Attribute("y")]))
        schema.link("b", "a")
        db = Database(schema)
        db.insert("a", {"id": 1, "x": "one"})
        db.insert("b", {"id": 1, "a_id": 1, "y": "ok"})
        db.insert("b", {"id": 2, "a_id": 999, "y": "dangling"})  # no such a
        db.insert("b", {"id": 3, "a_id": None, "y": "null"})
        db.build_indexes()
        fk = schema.join_edges("b", "a")[0]
        rows = db.execute_path(["b", "a"], [fk])
        assert len(rows) == 1
        assert rows[0][0].key == 1

    def test_empty_table_in_join_path(self, mini_db):
        mini_db.add_table(Table("review", [Attribute("text")]))
        mini_db.schema.link("review", "movie")
        db2 = mini_db  # review table exists but is empty
        fk = db2.schema.join_edges("review", "movie")[0]
        assert db2.execute_path(["review", "movie"], [fk]) == []


class TestDegenerateQueries:
    def test_single_effective_keyword_query(self, mini_generator, mini_model):
        query = KeywordQuery.from_terms(["hanks", "zzz", "qqq"])
        user = SimulatedUser(
            IntendedInterpretation(bindings={0: value_spec("actor", "name")})
        )
        result = ConstructionSession(query, mini_generator, mini_model).run(user)
        # Construction proceeds on the one effective keyword.
        assert result.final_candidates or not result.success

    def test_duplicate_keyword_query_space(self, mini_generator):
        query = KeywordQuery.from_terms(["hanks", "hanks", "hanks"])
        space = mini_generator.interpretations(query)
        for interp in space:
            interp.validate()

    def test_very_long_query_capped(self, mini_db):
        gen = InterpretationGenerator(
            mini_db, config=GeneratorConfig(max_interpretations=50)
        )
        query = KeywordQuery.from_terms(["hanks", "london", "tom", "2001", "terminal"])
        assert len(gen.interpretations(query)) <= 50


class TestOptionEdgeCases:
    def test_empty_atom_option_matches_everything(self, mini_generator, mini_model):
        h = QueryHierarchy(HANKS_2001, mini_generator, mini_model)
        h.expand_to_complete()
        n = len(h)
        empty = AtomSetOption(frozenset())
        h.accept(empty)  # subsumes everything: no pruning
        assert len(h) == n

    def test_option_probability_of_empty_option_is_one(self, mini_generator, mini_model):
        h = QueryHierarchy(HANKS_2001, mini_generator, mini_model)
        h.expand_to_complete()
        assert h.option_probability(AtomSetOption(frozenset())) == pytest.approx(1.0)


class TestModelConsistency:
    def test_atf_and_uniform_agree_on_space_membership(self, mini_db):
        """The model must not change *which* interpretations exist."""
        gen = InterpretationGenerator(mini_db, max_template_joins=2)
        space = gen.interpretations(HANKS_2001)
        catalog = TemplateCatalog(gen.templates)
        atf = ATFModel(mini_db.require_index(), catalog)
        uni = UniformModel()
        assert all(atf.interpretation_weight(i) >= 0 for i in space)
        assert all(uni.interpretation_weight(i) == 1.0 for i in space)

    def test_catalog_with_no_templates(self):
        catalog = TemplateCatalog([])
        from repro.core.templates import QueryTemplate

        t = QueryTemplate(path=("x",), edges=())
        assert catalog.prior(t) == 0.0
