"""Unit tests for the QueryEngine pipeline (repro.engine)."""

from __future__ import annotations

import pytest

from repro.core.keywords import KeywordQuery
from repro.core.probability import UniformModel
from repro.engine import (
    DEFAULT_STAGES,
    EngineConfig,
    EngineContext,
    QueryEngine,
    ResultCache,
)


class TestPipeline:
    def test_run_produces_all_stage_outputs(self, mini_db):
        engine = QueryEngine(mini_db)
        context = engine.run("hanks 2001", k=3)
        assert isinstance(context.query, KeywordQuery)
        assert context.interpretations
        assert context.ranked
        assert context.results
        assert [t.uid for r in [context.results[0].row] for t in r]

    def test_stage_timings_cover_every_stage(self, mini_db):
        context = QueryEngine(mini_db).run("hanks")
        assert list(context.stage_timings) == ["segment", "generate", "rank", "execute"]
        assert all(seconds >= 0.0 for seconds in context.stage_timings.values())
        assert context.total_seconds == pytest.approx(sum(context.stage_timings.values()))

    def test_accepts_preparsed_query(self, mini_db):
        engine = QueryEngine(mini_db)
        query = KeywordQuery.parse("hanks 2001")
        by_text = engine.run("hanks 2001", k=3)
        by_query = engine.run(query, k=3)
        assert by_query.query is query
        assert [r.row_uids() for r in by_query.results] == [
            r.row_uids() for r in by_text.results
        ]

    def test_search_returns_results_only(self, mini_db):
        engine = QueryEngine(mini_db)
        assert [r.row_uids() for r in engine.search("hanks", k=2)] == [
            r.row_uids() for r in engine.run("hanks", k=2).results
        ]

    def test_rank_matches_run(self, mini_db):
        engine = QueryEngine(mini_db)
        ranked = engine.rank("hanks 2001")
        context = engine.run("hanks 2001")
        assert [i.describe() for i, _p in ranked] == [
            i.describe() for i, _p in context.ranked
        ]

    def test_k_defaults_to_config(self, mini_db):
        engine = QueryEngine(mini_db, config=EngineConfig(k=1))
        assert len(engine.run("hanks").results) <= 1

    def test_explain_collects_sql(self, mini_db):
        context = QueryEngine(mini_db).run("hanks 2001", explain=True)
        assert context.sql
        assert all(statement.startswith("SELECT") for statement in context.sql)
        lines = "\n".join(context.explain_lines())
        assert "stage timings" in lines and "result cache" in lines

    def test_no_explain_no_sql(self, mini_db):
        assert QueryEngine(mini_db).run("hanks 2001").sql == []


class TestConfiguration:
    def test_cache_disabled(self, mini_db):
        engine = QueryEngine(mini_db, config=EngineConfig(cache_results=False))
        assert engine.cache is None
        context = engine.run("hanks")
        assert context.cache_hits == 0 and context.cache_misses == 0

    def test_cache_enabled_by_default(self, mini_db):
        engine = QueryEngine(mini_db)
        assert isinstance(engine.cache, ResultCache)
        engine.run("hanks")
        warm = engine.run("hanks")
        assert warm.executor_statistics.interpretations_executed == 0
        assert warm.cache_hits > 0

    def test_with_model_shares_generator_and_cache(self, mini_db):
        engine = QueryEngine(mini_db)
        sibling = engine.with_model(UniformModel())
        assert sibling.generator is engine.generator
        assert sibling.cache is engine.cache
        assert isinstance(sibling.model, UniformModel)

    def test_with_model_accepts_factory(self, mini_db):
        engine = QueryEngine(mini_db)
        sibling = engine.with_model(lambda e: UniformModel())
        assert isinstance(sibling.model, UniformModel)

    def test_model_and_factory_exclusive(self, mini_db):
        with pytest.raises(ValueError):
            QueryEngine(
                mini_db, model=UniformModel(), model_factory=lambda e: UniformModel()
            )

    def test_custom_stage_plugs_in(self, mini_db):
        class AnnotateStage:
            name = "annotate"

            def run(self, engine, context):
                context.results = [r for r in context.results if r.score > 0.0]
                context.stage_note = "ran"  # type: ignore[attr-defined]

        engine = QueryEngine(mini_db, stages=[*DEFAULT_STAGES, AnnotateStage()])
        context = engine.run("hanks 2001")
        assert context.stage_note == "ran"
        assert "annotate" in context.stage_timings

    def test_for_dataset_unknown(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            QueryEngine.for_dataset("nope")

    def test_for_dataset_routes_kwargs(self, imdb_db):
        engine = QueryEngine.for_dataset("imdb", config=EngineConfig(k=2))
        assert engine.config.k == 2
        assert engine.backend.schema.table_names == imdb_db.schema.table_names


class TestContext:
    def test_context_construction(self, mini_db):
        context = EngineContext(
            backend=mini_db, config=EngineConfig(), query_text="x", k=3
        )
        assert context.results == [] and context.ranked == []
        assert context.cache_hits == 0
