"""ResultCache semantics: reuse, cross-session persistence, invalidation.

The invariant under test: a cache entry is only ever served for the *exact*
store content it was computed on.  Mutating a store — through the backend API
or behind its back — changes the content fingerprint, which must bust both
the result cache and the persisted index postings; stale rows are never
served.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.core.keywords import KeywordQuery
from repro.db.backends.sqlite import SQLiteBackend
from repro.engine import EngineConfig, QueryEngine, ResultCache
from tests.conftest import build_mini_db, mini_schema


@pytest.fixture(autouse=True)
def fresh_process_cache():
    """Each test starts (and ends) with an empty process-level layer."""
    ResultCache.clear_process_cache()
    yield
    ResultCache.clear_process_cache()


def _first_query(db):
    """A structured query with known, non-empty results on mini_db content."""
    engine = QueryEngine(db, config=None)
    ranked = engine.rank("hanks 2001")
    assert ranked
    return ranked[0][0].to_structured_query()


class TestResultCacheBasics:
    def test_get_miss_then_hit(self, mini_db):
        cache = ResultCache(mini_db)
        query = _first_query(mini_db)
        assert cache.get(query, 10) is None
        rows = query.execute(mini_db, limit=10)
        cache.put(query, 10, rows)
        assert cache.get(query, 10) == rows
        assert cache.statistics.hits == 1 and cache.statistics.misses == 1

    def test_fetch_executes_once(self, mini_db):
        cache = ResultCache(mini_db)
        query = _first_query(mini_db)
        first = cache.fetch(query, 10)
        second = cache.fetch(query, 10)
        assert first == second
        assert cache.statistics.stores == 1
        assert cache.statistics.hits == 1

    def test_limit_is_part_of_the_key(self, mini_db):
        cache = ResultCache(mini_db)
        query = _first_query(mini_db)
        cache.put(query, 1, query.execute(mini_db, limit=1))
        assert cache.get(query, 2) is None

    def test_returns_copies(self, mini_db):
        cache = ResultCache(mini_db)
        query = _first_query(mini_db)
        rows = cache.fetch(query, 10)
        rows.append("sentinel")
        assert cache.get(query, 10)[-1] != "sentinel"

    def test_distinct_stores_never_alias(self):
        """Two hand-built stores with identical shape get distinct nonces."""
        a, b = build_mini_db(), build_mini_db()
        assert a.content_fingerprint() != b.content_fingerprint()
        query = _first_query(a)
        cache_a, cache_b = ResultCache(a), ResultCache(b)
        cache_a.put(query, 10, query.execute(a, limit=10))
        assert cache_b.get(query, 10) is None

    def test_equal_count_divergence_never_aliases(self):
        """Two same-dataset stores that diverged by equal-count mutations
        must not share cache entries — row counts alone cannot tell them
        apart, the mutation digest must."""
        from repro.datasets.imdb import build_imdb

        a, b = build_imdb(), build_imdb()
        assert a.content_fingerprint() == b.content_fingerprint()  # same content
        a.insert("movie", {"id": 9_000, "title": "paris nights"})
        b.insert("movie", {"id": 9_000, "title": "paris days"})
        assert a.content_fingerprint() != b.content_fingerprint()
        # The interpretation both stores disagree on: paris ∈ movie.title.
        query = next(
            i.to_structured_query()
            for i, _p in QueryEngine(a).rank("paris")
            if i.to_structured_query().algebra() == "sigma_{{paris} in title}(movie)"
        )
        title_of = lambda rows: {
            t["title"] for r in rows for t in r if t.key == 9_000
        }
        assert title_of(ResultCache(a).fetch(query, None)) == {"paris nights"}
        assert title_of(ResultCache(b).fetch(query, None)) == {"paris days"}


class TestConfigurableCapacity:
    """EngineConfig.result_cache_size bounds the process-level LRU."""

    def test_engine_config_reaches_the_cache(self, mini_db):
        engine = QueryEngine(mini_db, config=EngineConfig(result_cache_size=7))
        assert engine.cache is not None
        assert engine.cache.capacity == 7

    def test_capacity_bounds_the_lru(self, mini_db):
        from repro.engine.cache import _PROCESS_CACHE

        cache = ResultCache(mini_db, capacity=2)
        engine = QueryEngine(mini_db, cache=cache)
        query = engine.rank("hanks 2001")[0][0].to_structured_query()
        for limit in (1, 2, 3):  # the limit is part of the key: 3 entries
            cache.put(query, limit, query.execute(mini_db, limit=limit))
        assert len(_PROCESS_CACHE) == 2
        # LRU: the two most recent puts survive, the oldest was evicted.
        assert cache.get(query, 3) is not None
        assert cache.get(query, 1) is None

    def test_capacity_must_be_positive(self, mini_db):
        with pytest.raises(ValueError, match="capacity must be positive"):
            ResultCache(mini_db, capacity=0)

    def test_mid_run_shrink_evicts_oldest_first_at_construction(self, mini_db):
        """Regression: a smaller capacity takes effect when the instance is
        *constructed* (an engine reconfigured mid-run), deterministically
        evicting the least-recently-used entries — not lazily on the shrunk
        instance's next write, and never a newest entry."""
        from repro.engine.cache import _PROCESS_CACHE

        wide = ResultCache(mini_db, capacity=10)
        query = _first_query(mini_db)
        for limit in (1, 2, 3, 4, 5):
            wide.put(query, limit, query.execute(mini_db, limit=limit))
        assert len(_PROCESS_CACHE) == 5
        narrow = ResultCache(mini_db, capacity=2)
        # The shrink happened immediately, before any write through `narrow`.
        assert len(_PROCESS_CACHE) == 2
        # Oldest-first: exactly the two most recent puts survive.
        assert narrow.get(query, 5) is not None
        assert narrow.get(query, 4) is not None
        assert narrow.get(query, 3) is None
        assert narrow.get(query, 1) is None

    def test_default_capacity_unchanged(self, mini_db):
        from repro.engine import cache as cache_module

        assert ResultCache(mini_db).capacity is None
        assert cache_module._PROCESS_CACHE_CAPACITY == 4096


class TestInvalidation:
    def test_api_mutation_busts_memory_store(self, mini_db):
        engine = QueryEngine(mini_db)
        cold = engine.run("hanks", k=5)
        warm = engine.run("hanks", k=5)
        assert warm.executor_statistics.interpretations_executed == 0
        mini_db.insert("actor", {"id": 99, "name": "henry hanks"})
        after = engine.run("hanks", k=5)
        # New fingerprint: nothing served from cache, fresh execution ran.
        assert after.executor_statistics.cache_hits == 0
        assert after.executor_statistics.interpretations_executed > 0
        new_uids = {u for r in after.results for u in r.row_uids()}
        cold_uids = {u for r in cold.results for u in r.row_uids()}
        assert new_uids != cold_uids or len(after.results) != len(cold.results)

    def test_api_mutation_busts_persistent_store(self, tmp_path):
        path = tmp_path / "mini.sqlite"
        db = build_mini_db("sqlite", db_path=path)
        engine = QueryEngine(db)
        engine.run("london", k=5)
        db.insert("actor", {"id": 42, "name": "london fog"})
        after = engine.run("london", k=5)
        assert after.executor_statistics.cache_hits == 0
        served = {u for r in after.results for u in r.row_uids()}
        assert ("actor", 42) in served
        db.close()

    def test_out_of_band_mutation_busts_everything(self, tmp_path):
        """Rows changed behind the backend's back: stale postings and stale
        cached results must both be rejected on the next open."""
        path = tmp_path / "mini.sqlite"
        db = build_mini_db("sqlite", db_path=path)
        engine = QueryEngine(db)
        engine.run("london", k=5)
        old_fingerprint = db.content_fingerprint()
        db.close()

        raw = sqlite3.connect(path)
        raw.execute(
            "INSERT INTO actor (name, bio, id) VALUES ('jack london', NULL, 77)"
            if _has_bio(raw)
            else "INSERT INTO actor (name, id) VALUES ('jack london', 77)"
        )
        raw.commit()
        raw.close()

        ResultCache.clear_process_cache()  # simulate a new process
        reopened = SQLiteBackend(mini_schema(), path=path)
        index = reopened.build_indexes()
        assert reopened.content_fingerprint() != old_fingerprint
        # Persisted postings were rejected and rebuilt: the new row is indexed.
        assert 77 in index.tuple_keys("london", "actor", "name")
        after = QueryEngine(reopened).run("london", k=5)
        served = {u for r in after.results for u in r.row_uids()}
        assert ("actor", 77) in served
        reopened.close()

    def test_tokenizer_change_busts_cached_results(self, tmp_path):
        """Reopening a store with a different tokenizer changes what
        'contains' means: cached rows from the old tokenizer must not be
        served (the persisted index already rebuilds; the result cache must
        miss too)."""
        from repro.db.tokenizer import Tokenizer

        path = tmp_path / "mini.sqlite"
        db = build_mini_db("sqlite", db_path=path)
        QueryEngine(db).run("calling", k=5)  # caches under the default tokenizer
        db.close()

        ResultCache.clear_process_cache()
        # A stemming tokenizer folds "calling" -> "call": different postings,
        # different result sets for the same query text.
        reopened = SQLiteBackend(
            mini_schema(), tokenizer=Tokenizer(stem=True), path=path
        )
        reopened.build_indexes()
        after = QueryEngine(reopened).run("calling", k=5)
        assert after.executor_statistics.cache_hits == 0
        reopened.close()

    def test_two_datasets_coexist_in_one_file(self, tmp_path):
        """Datasets share a --db-path (tables are namespaced); the second
        build must not clobber the first one's fingerprint, reuse check,
        persisted postings or cached results."""
        from repro.datasets.imdb import build_imdb
        from repro.datasets.lyrics import build_lyrics
        from repro.db.index import InvertedIndex

        path = tmp_path / "both.sqlite"
        build_imdb(backend="sqlite", db_path=path).close()
        build_lyrics(backend="sqlite", db_path=path).close()
        reopened = build_imdb(backend="sqlite", db_path=path)  # reuse, no error
        results = QueryEngine(reopened).run("hanks 2001", k=5).results
        legacy = (
            QueryEngine(build_imdb(), config=EngineConfig(cache_results=False))
            .run("hanks 2001", k=5)
            .results
        )
        assert [r.row_uids() for r in results] == [r.row_uids() for r in legacy]
        reopened.close()

        # From here on both datasets are persisted under the combined
        # content seed: alternating opens must LOAD each schema's postings
        # (no rebuild) and keep each schema's cached results.
        warm_lyrics = build_lyrics(backend="sqlite", db_path=path)
        warm_lyrics.close()
        ResultCache.clear_process_cache()
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(
                InvertedIndex,
                "build",
                lambda *a, **k: pytest.fail("coexisting dataset forced a rebuild"),
            )
            warm_imdb = build_imdb(backend="sqlite", db_path=path)
        second = QueryEngine(warm_imdb).run("hanks 2001", k=5)
        assert second.executor_statistics.interpretations_executed == 0
        assert [r.row_uids() for r in second.results] == [
            r.row_uids() for r in results
        ]
        warm_imdb.close()

    def test_cross_session_persistent_hit(self, tmp_path):
        """A new process over an unchanged store starts warm from the side
        table: identical rows, zero interpretations executed."""
        path = tmp_path / "mini.sqlite"
        db = build_mini_db("sqlite", db_path=path)
        first = QueryEngine(db).run("hanks 2001", k=5)
        assert first.executor_statistics.interpretations_executed > 0
        db.close()

        ResultCache.clear_process_cache()  # the "new process"
        reopened = SQLiteBackend(mini_schema(), path=path)
        reopened.build_indexes()
        second = QueryEngine(reopened).run("hanks 2001", k=5)
        assert second.executor_statistics.interpretations_executed == 0
        assert second.cache_hits > 0
        assert [r.row_uids() for r in second.results] == [
            r.row_uids() for r in first.results
        ]
        reopened.close()


def _has_bio(conn: sqlite3.Connection) -> bool:
    columns = [row[1] for row in conn.execute("PRAGMA table_info(actor)")]
    return "bio" in columns
