"""Engine-vs-legacy parity: the QueryEngine pipeline must reproduce the
hand-wired generator → ranker → executor flow exactly.

The engine is a refactoring seam, not a semantics change: for every query the
ranked interpretation list and the top-k result rows must be identical to
what the pre-engine wiring (the code the CLI, experiments and benchmarks used
to carry inline) produces — with the result cache cold, warm, and disabled.
"""

from __future__ import annotations

import pytest

from repro.core.generator import InterpretationGenerator
from repro.core.keywords import KeywordQuery
from repro.core.probability import ATFModel, TemplateCatalog, rank_interpretations
from repro.core.topk import TopKExecutor
from repro.engine import EngineConfig, QueryEngine
from tests.conftest import build_mini_db

IMDB_QUERIES = ["hanks 2001", "london", "stone hill", "summer", "number hanks"]
LYRICS_QUERIES = ["london", "river blues", "summer night"]


def _legacy_stack(db):
    """The wiring cli.py/ch3/benchmarks carried before the engine existed."""
    generator = InterpretationGenerator(db, max_template_joins=4)
    model = ATFModel(db.require_index(), TemplateCatalog(generator.templates))
    return generator, model


def _legacy_search(db, generator, model, query_text: str, k: int):
    query = KeywordQuery.parse(query_text)
    ranked = rank_interpretations(generator.interpretations(query), model)
    executor = TopKExecutor(db)
    results = executor.execute(ranked, k=k)
    return ranked, results


@pytest.mark.parametrize(
    "db_fixture, queries",
    [("imdb_db", IMDB_QUERIES), ("lyrics_db", LYRICS_QUERIES)],
)
def test_engine_matches_legacy_wiring(request, db_fixture, queries):
    db = request.getfixturevalue(db_fixture)
    generator, model = _legacy_stack(db)
    engine = QueryEngine(db)
    uncached = QueryEngine(db, config=EngineConfig(cache_results=False))
    for query_text in queries:
        legacy_ranked, legacy_results = _legacy_search(db, generator, model, query_text, 5)
        for candidate in (
            uncached.run(query_text, k=5),
            engine.run(query_text, k=5),  # cold cache
            engine.run(query_text, k=5),  # warm cache
        ):
            assert [
                (i.to_structured_query().algebra(), pytest.approx(p))
                for i, p in legacy_ranked
            ] == [(i.to_structured_query().algebra(), p) for i, p in candidate.ranked]
            assert [(r.score, r.row_uids()) for r in legacy_results] == [
                (r.score, r.row_uids()) for r in candidate.results
            ]


def test_warm_engine_skips_execution_but_not_results(imdb_db):
    engine = QueryEngine(imdb_db)
    cold = engine.run("london", k=5)
    warm = engine.run("london", k=5)
    assert warm.executor_statistics.interpretations_executed == 0
    assert warm.cache_hits > 0 and warm.cache_misses == 0
    assert [r.row_uids() for r in warm.results] == [r.row_uids() for r in cold.results]


def test_engine_rows_equal_across_backends(tmp_path):
    mem_engine = QueryEngine(build_mini_db())
    sq_engine = QueryEngine(build_mini_db("sqlite", db_path=tmp_path / "mini.sqlite"))
    for query_text in ("hanks 2001", "london", "terminal"):
        mem = mem_engine.run(query_text, k=5)
        sq = sq_engine.run(query_text, k=5)
        assert [r.row_uids() for r in mem.results] == [r.row_uids() for r in sq.results]
    sq_engine.backend.close()
