"""Smoke tests of the experiment harnesses (scaled-down parameters).

Each harness is checked for (a) running end-to-end and (b) the qualitative
*shape* the thesis reports — who wins, which direction things move.
"""

import pytest

from repro.experiments import ch3, ch4, ch5, ch6
from repro.experiments.reporting import format_table, summary_stats


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", "y"]])
        assert "a" in text and "2.5" in text
        assert len(text.splitlines()) == 4

    def test_summary_stats(self):
        s = summary_stats([1, 2, 3, 4, 5])
        assert s.median == 3
        assert s.minimum == 1 and s.maximum == 5
        assert s.lower_quartile <= s.median <= s.upper_quartile

    def test_summary_stats_empty(self):
        assert summary_stats([]).n == 0

    def test_summary_stats_single(self):
        s = summary_stats([7.0])
        assert s.median == 7.0 and s.mean == 7.0


@pytest.fixture(scope="module")
def ch3_setup():
    return ch3.build_setup("imdb", n_queries=10)


class TestChapter3:
    def test_fig_3_5_shape(self, ch3_setup):
        costs = ch3.fig_3_5(setup=ch3_setup)
        assert set(costs) == {"baseline", "atf_tequal", "atf_tlog"}
        n = len(ch3_setup.workload)
        assert all(len(v) == n for v in costs.values())
        # The probabilistic estimates beat the uniform baseline on average.
        mean = lambda v: sum(v) / len(v)
        assert mean(costs["atf_tlog"]) <= mean(costs["baseline"]) + 0.5

    def test_fig_3_6_construction_bounded(self, ch3_setup):
        data = ch3.fig_3_6(setup=ch3_setup)
        assert max(data["construction_iqp"]) <= max(
            max(data["rank_iqp"]), max(data["rank_sqak"])
        )

    def test_fig_3_7_rows(self, ch3_setup):
        rows = ch3.fig_3_7(setup=ch3_setup)
        assert rows
        for category, ranking_s, construction_s in rows:
            assert category >= 0
            assert ranking_s > 0 and construction_s > 0

    def test_study_tasks_consistent(self, ch3_setup):
        tasks = ch3.study_tasks(setup=ch3_setup)
        for task in tasks:
            assert 1 <= task.intended_rank <= task.space_size

    def test_table_3_2_shape(self):
        rows = ch3.table_3_2(table_counts=(5, 20), repeats=3)
        assert rows[1]["queries"] > rows[0]["queries"]
        assert rows[1]["steps@20"] < rows[1]["queries"]

    def test_table_3_3_shape(self):
        rows = ch3.table_3_3(keyword_counts=(2, 6), repeats=3)
        assert rows[1]["queries"] > rows[0]["queries"]

    def test_table_3_4_greedy_close_to_optimal(self):
        rows = ch3.table_3_4(sizes=((8, 4), (12, 6)), repeats=4)
        for row in rows:
            assert row["greedy_cost"] >= row["brute_force_cost"] - 1e-9
            assert row["greedy_cost"] <= row["brute_force_cost"] * 1.2

    def test_reports_render(self, ch3_setup):
        assert "Fig. 3.5" in ch3.fig_3_5_report("imdb", 6)
        assert "Table 3.4" in ch3.table_3_4_report(sizes=((8, 4),), repeats=2)


@pytest.fixture(scope="module")
def ch4_setup():
    return ch4.build_setup("imdb", n_queries=8)


class TestChapter4:
    def test_judged_topics_built(self, ch4_setup):
        assert ch4_setup.judged
        for judged in ch4_setup.judged:
            assert len(judged.interpretations) >= 3
            assert len(judged.relevance) == len(judged.interpretations)

    def test_fig_4_1_ratios_fall(self, ch4_setup):
        max_pr, avg_pr = ch4.fig_4_1(ch4_setup)
        early = sum(avg_pr[:3]) / 3
        late_values = [v for v in avg_pr[8:] if v > 0]
        if late_values:
            assert early > sum(late_values) / len(late_values)

    def test_fig_4_2_alpha_zero_ranking_wins(self, ch4_setup):
        data = ch4.fig_4_2(ch4_setup, alphas=(0.0,), ks=(3, 5))
        for kind in ("sc", "mc"):
            if (0.0, "rank", kind) in data:
                rank = data[(0.0, "rank", kind)]
                div = data[(0.0, "div", kind)]
                assert all(r >= d - 0.05 for r, d in zip(rank, div))

    def test_fig_4_2_high_alpha_div_wins_mc(self, ch4_setup):
        data = ch4.fig_4_2(ch4_setup, alphas=(0.99,), ks=(4, 6, 8))
        if (0.99, "div", "mc") in data:
            div = data[(0.99, "div", "mc")]
            rank = data[(0.99, "rank", "mc")]
            assert sum(div) >= sum(rank) - 0.05

    def test_fig_4_3_values_valid(self, ch4_setup):
        data = ch4.fig_4_3(ch4_setup, ks=(1, 3, 5))
        for series in data.values():
            assert all(0.0 <= v <= 1.0 + 1e-9 for v in series)
            assert series == sorted(series)  # monotone in k

    def test_fig_4_4_tradeoff_direction(self, ch4_setup):
        rows = ch4.fig_4_4(ch4_setup, tradeoffs=(0.0, 1.0))
        assert len(rows) == 2
        (_l0, rel0, nov0), (_l1, rel1, nov1) = rows
        assert rel1 >= rel0 - 1e-9  # relevance grows with lambda
        assert nov0 >= nov1 - 1e-9  # novelty falls with lambda

    def test_table_4_1_renders(self, ch4_setup):
        assert "Table 4.1" in ch4.table_4_1(ch4_setup)


class TestChapter5:
    @pytest.fixture(scope="class")
    def setup5(self):
        return ch5.build_setup(n_domains=6, n_queries=6, rows_per_entity_table=12)

    def test_construction_runs(self, setup5):
        assert setup5.workload
        item = setup5.workload[0]
        result = ch5._run_ontology(setup5, item)
        assert result.success

    def test_fig_5_2_ontology_no_worse(self):
        rows = ch5.fig_5_2(domain_counts=(3, 8), n_queries=5)
        for row in rows:
            assert row["onto_cost"] <= row["plain_cost"] + 0.75
            assert row["onto_efficiency"] >= row["plain_efficiency"] - 0.05

    def test_table_5_3_no_ontology_worst(self):
        rows = ch5.table_5_3(n_domains=6, n_queries=5)
        by_label = {r["ontology"]: r["mean_cost"] for r in rows}
        assert by_label["types (level 1)"] <= by_label["no ontology (attributes)"] + 0.5

    def test_table_5_2_rows(self):
        rows = ch5.table_5_2(n_queries=4)
        assert {r["keywords"] for r in rows} == {2, 3}

    def test_fig_5_5_effort_grows(self):
        rows = ch5.fig_5_5(domain_counts=(3, 8), n_queries=3, top_k=5)
        assert rows[1]["topk_pops"] >= rows[0]["topk_pops"]

    def test_table_5_1_renders(self, setup5):
        assert "Table 5.1" in ch5.table_5_1(setup5)


class TestChapter6:
    @pytest.fixture(scope="class")
    def setup6(self):
        return ch6.build_setup(n_tables=30)

    def test_table_6_1_counts_all_classes(self, setup6):
        rows = ch6.table_6_1(setup6)
        assert sum(n for _label, n in rows) == len(setup6.data.ontology)

    def test_table_6_2_instances_at_leaves(self, setup6):
        rows = ch6.table_6_2(setup6)
        assert rows[-1][2] > 0

    def test_fig_6_2_histogram(self, setup6):
        rows = ch6.fig_6_2(setup6)
        assert rows
        assert all(k >= 1 and n >= 1 for k, n in rows)

    def test_table_6_3_summary(self, setup6):
        summary = ch6.table_6_3(setup6)
        assert summary["attached_tables"] <= 30

    def test_fig_6_4_recall_monotone(self, setup6):
        rows = ch6.fig_6_4(setup6, thresholds=(0.2, 0.5, 0.8))
        recalls = [r for _t, _p, r in rows]
        assert recalls == sorted(recalls, reverse=True)

    def test_reports_render(self, setup6):
        assert "Table 6.1" in ch6.table_6_1_report(setup6)
        assert "Fig. 6.4" in ch6.fig_6_4_report(setup6)
