"""Unit tests for repro.freeq.ontology (schema ontology layer)."""

import pytest

from repro.freeq.ontology import SchemaOntology, build_type_domain_ontology


@pytest.fixture
def ontology() -> SchemaOntology:
    o = SchemaOntology()
    o.add_concept("Person")
    o.add_concept("Person/film", "Person")
    o.add_concept("Person/music", "Person")
    o.add_concept("CreativeWork")
    o.assign_attribute("film_actor", "name", "Person/film")
    o.assign_attribute("music_artist", "name", "Person/music")
    o.assign_table("film_actor", "Person/film")
    return o


class TestStructure:
    def test_root_exists(self):
        o = SchemaOntology()
        assert SchemaOntology.ROOT in o
        assert len(o) == 1

    def test_add_duplicate_rejected(self, ontology):
        with pytest.raises(ValueError):
            ontology.add_concept("Person")

    def test_unknown_parent_rejected(self):
        o = SchemaOntology()
        with pytest.raises(KeyError):
            o.add_concept("X", "Ghost")

    def test_ensure_concept_idempotent(self, ontology):
        a = ontology.ensure_concept("Person")
        b = ontology.ensure_concept("Person")
        assert a is b

    def test_ancestors(self, ontology):
        assert ontology.ancestors("Person/film") == ["Thing", "Person", "Person/film"]

    def test_levels(self, ontology):
        assert ontology.level_of("Thing") == 0
        assert ontology.level_of("Person") == 1
        assert ontology.level_of("Person/film") == 2
        assert ontology.depth() == 2

    def test_concepts_at_level(self, ontology):
        assert ontology.concepts_at_level(1) == ["CreativeWork", "Person"]

    def test_concept_at_level_clamps(self, ontology):
        assert ontology.concept_at_level("Person/film", 1) == "Person"
        assert ontology.concept_at_level("Person/film", 5) == "Person/film"
        assert ontology.concept_at_level("Person/film", 0) == "Thing"


class TestAssignments:
    def test_concept_of_attribute(self, ontology):
        assert ontology.concept_of_attribute("film_actor", "name") == "Person/film"
        assert ontology.concept_of_attribute("ghost", "name") is None

    def test_concept_of_table(self, ontology):
        assert ontology.concept_of_table("film_actor") == "Person/film"
        assert ontology.concept_of_table("music_artist") is None

    def test_assign_to_unknown_concept(self, ontology):
        with pytest.raises(KeyError):
            ontology.assign_attribute("x", "y", "Ghost")

    def test_reassignment_moves_element(self, ontology):
        ontology.assign_attribute("film_actor", "name", "Person/music")
        assert ontology.concept_of_attribute("film_actor", "name") == "Person/music"
        assert ("attr", "film_actor", "name") not in ontology.concept("Person/film").elements

    def test_elements_under_transitive(self, ontology):
        elements = ontology.elements_under("Person")
        assert ("attr", "film_actor", "name") in elements
        assert ("attr", "music_artist", "name") in elements

    def test_fan_out(self, ontology):
        # Person groups 3 elements (2 attrs + 1 table) in one concept.
        assert ontology.fan_out(1) >= 1.0

    def test_summary(self, ontology):
        s = ontology.summary()
        assert s["concepts"] == len(ontology)
        assert s["depth"] == 2


class TestBuilder:
    def test_two_layer_build(self):
        o = build_type_domain_ontology(
            [("film_actor", "name", "Person", "film"), ("book_author", "name", "Person", "book")]
        )
        assert o.concept_of_attribute("film_actor", "name") == "Person/film"
        assert o.level_of("Person/film") == 2

    def test_three_layer_build_with_groups(self):
        o = build_type_domain_ontology(
            [("film_actor", "name", "Person", "film")],
            domain_groups={"film": "media"},
        )
        assert o.concept_of_attribute("film_actor", "name") == "Person/media/film"
        assert o.ancestors("Person/media/film") == [
            "Thing",
            "Person",
            "Person/media",
            "Person/media/film",
        ]

    def test_tables_assigned_once(self):
        o = build_type_domain_ontology(
            [
                ("t", "name", "Person", "film"),
                ("t", "bio", "Text", "film"),
            ]
        )
        assert o.concept_of_table("t") == "Person/film"
