"""Unit tests for repro.freeq.qco (ontology QCOs + efficiency measure)."""

import pytest

from repro.core.generator import InterpretationGenerator
from repro.core.hierarchy import QueryHierarchy
from repro.core.keywords import KeywordQuery
from repro.core.options import AtomSetOption, ConceptOption
from repro.core.probability import ATFModel, TemplateCatalog
from repro.db.database import Database
from repro.db.schema import Attribute, Schema, Table
from repro.freeq.ontology import SchemaOntology
from repro.freeq.qco import OntologyQCOProvider, option_efficiency, provider_efficiency


@pytest.fixture
def concept_db() -> Database:
    """Two person tables sharing a surname — one semantic concept, two
    attributes, so concept-level QCOs genuinely group candidates."""
    schema = Schema()
    schema.add_table(Table("actor", [Attribute("name"), Attribute("id", textual=False)]))
    schema.add_table(Table("director", [Attribute("name"), Attribute("id", textual=False)]))
    schema.add_table(
        Table("movie", [Attribute("title"), Attribute("year"), Attribute("id", textual=False)])
    )
    schema.add_table(Table("acts", [Attribute("id", textual=False)]))
    schema.add_table(Table("directs", [Attribute("id", textual=False)]))
    schema.link("acts", "actor")
    schema.link("acts", "movie")
    schema.link("directs", "director")
    schema.link("directs", "movie")
    db = Database(schema)
    db.insert("actor", {"id": 1, "name": "tom hanks"})
    db.insert("director", {"id": 1, "name": "mary hanks"})
    db.insert("movie", {"id": 1, "title": "hanks story", "year": "2001"})
    db.insert("acts", {"id": 1, "actor_id": 1, "movie_id": 1})
    db.insert("directs", {"id": 1, "director_id": 1, "movie_id": 1})
    db.build_indexes()
    return db


@pytest.fixture
def mini_ontology(concept_db) -> SchemaOntology:
    o = SchemaOntology()
    o.add_concept("Person")
    o.add_concept("Work")
    o.assign_attribute("actor", "name", "Person")
    o.assign_attribute("director", "name", "Person")
    o.assign_attribute("movie", "title", "Work")
    o.assign_attribute("movie", "year", "Work")
    o.assign_table("actor", "Person")
    o.assign_table("director", "Person")
    o.assign_table("movie", "Work")
    return o


@pytest.fixture
def expanded_hierarchy(concept_db):
    generator = InterpretationGenerator(concept_db, max_template_joins=2)
    model = ATFModel(concept_db.require_index(), TemplateCatalog(generator.templates))
    q = KeywordQuery.from_terms(["hanks", "2001"])
    h = QueryHierarchy(q, generator, model)
    h.expand_to_complete()
    return h


class TestProvider:
    def test_emits_concept_options(self, expanded_hierarchy, mini_ontology):
        provider = OntologyQCOProvider(mini_ontology)
        options = provider(expanded_hierarchy)
        concepts = [o for o in options if isinstance(o, ConceptOption)]
        assert concepts
        assert any(o.concept == "Person" for o in concepts)

    def test_concept_groups_multiple_attributes(self, expanded_hierarchy, mini_ontology):
        provider = OntologyQCOProvider(mini_ontology)
        for option in provider(expanded_hierarchy):
            if isinstance(option, ConceptOption):
                assert len(option.atoms) >= 2
                assert len({a.keyword for a in option.atoms}) == 1

    def test_atom_options_included_by_default(self, expanded_hierarchy, mini_ontology):
        provider = OntologyQCOProvider(mini_ontology)
        options = provider(expanded_hierarchy)
        assert any(isinstance(o, AtomSetOption) for o in options)

    def test_atom_options_can_be_excluded(self, expanded_hierarchy, mini_ontology):
        provider = OntologyQCOProvider(mini_ontology, include_atom_options=False)
        options = provider(expanded_hierarchy)
        assert options  # concept options exist
        assert all(isinstance(o, ConceptOption) for o in options)

    def test_unassigned_atoms_fall_back(self, expanded_hierarchy):
        empty_ontology = SchemaOntology()
        provider = OntologyQCOProvider(empty_ontology)
        options = provider(expanded_hierarchy)
        assert options
        assert all(isinstance(o, AtomSetOption) for o in options)

    def test_deterministic(self, expanded_hierarchy, mini_ontology):
        provider = OntologyQCOProvider(mini_ontology)
        a = [o.describe() for o in provider(expanded_hierarchy)]
        b = [o.describe() for o in provider(expanded_hierarchy)]
        assert a == b


class TestEfficiency:
    def test_perfect_split_efficiency_one(self):
        assert option_efficiency([0.5, 0.5], [True, False]) == pytest.approx(1.0)

    def test_no_split_efficiency_zero(self):
        assert option_efficiency([0.5, 0.5], [True, True]) == 0.0

    def test_single_node_frontier(self):
        assert option_efficiency([1.0], [True]) == 0.0

    def test_range(self):
        v = option_efficiency([0.6, 0.3, 0.1], [True, False, False])
        assert 0.0 <= v <= 1.0

    def test_provider_efficiency_concepts_dominate_atoms(
        self, expanded_hierarchy, mini_ontology
    ):
        """Concept QCOs are at least as efficient as the best atom QCO on
        the mini database (they aggregate probability mass)."""
        atom_eff = provider_efficiency(
            expanded_hierarchy, expanded_hierarchy.frontier_atoms()
        )
        provider = OntologyQCOProvider(mini_ontology)
        concept_eff = provider_efficiency(expanded_hierarchy, provider(expanded_hierarchy))
        assert concept_eff >= atom_eff - 1e-9
