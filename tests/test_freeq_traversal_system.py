"""Unit tests for repro.freeq.traversal and repro.freeq.system."""

import pytest

from repro.core.generator import InterpretationGenerator
from repro.core.keywords import KeywordQuery
from repro.core.probability import ATFModel, TemplateCatalog, rank_interpretations
from repro.datasets.freebase import freebase_workload
from repro.freeq.system import FreeQ
from repro.freeq.traversal import BestFirstExplorer
from repro.user.oracle import IntendedInterpretation, SimulatedUser, value_spec

HANKS_2001 = KeywordQuery.from_terms(["hanks", "2001"])
INTENDED = IntendedInterpretation(
    bindings={0: value_spec("actor", "name"), 1: value_spec("movie", "year")},
    template_path=("actor", "acts", "movie"),
)


class TestBestFirstExplorer:
    def test_order_matches_exhaustive_ranking(self, mini_generator, mini_model):
        """Best-first top-k must equal the exhaustively ranked top-k."""
        explorer = BestFirstExplorer(HANKS_2001, mini_generator, mini_model)
        top = explorer.top_interpretations(5)
        exhaustive = rank_interpretations(
            mini_generator.interpretations(HANKS_2001), mini_model
        )
        top_described = [i.describe() for i, _w in top]
        exhaustive_described = [i.describe() for i, _p in exhaustive[:5]]
        assert top_described == exhaustive_described

    def test_weights_descend(self, mini_generator, mini_model):
        explorer = BestFirstExplorer(HANKS_2001, mini_generator, mini_model)
        weights = [w for _i, w in explorer.top_interpretations(8)]
        assert weights == sorted(weights, reverse=True)

    def test_results_are_valid_complete(self, mini_generator, mini_model):
        explorer = BestFirstExplorer(HANKS_2001, mini_generator, mini_model)
        for interp, _w in explorer.top_interpretations(5):
            interp.validate()
            assert interp.is_complete

    def test_pops_bounded(self, mini_generator, mini_model):
        explorer = BestFirstExplorer(HANKS_2001, mini_generator, mini_model)
        explorer.top_interpretations(3, max_pops=10)
        assert explorer.pops <= 10

    def test_empty_query(self, mini_generator, mini_model):
        explorer = BestFirstExplorer(
            KeywordQuery.from_terms([]), mini_generator, mini_model
        )
        assert explorer.top_interpretations(3) == []

    def test_n_zero(self, mini_generator, mini_model):
        explorer = BestFirstExplorer(HANKS_2001, mini_generator, mini_model)
        assert explorer.top_interpretations(0) == []

    def test_partial_materialization(self, mini_generator, mini_model):
        """Asking for 1 interpretation must not enumerate the whole space."""
        explorer = BestFirstExplorer(HANKS_2001, mini_generator, mini_model)
        explorer.top_interpretations(1)
        full = BestFirstExplorer(HANKS_2001, mini_generator, mini_model)
        full.top_interpretations(10_000)
        assert explorer.pops < full.pops


class TestFreeQSystem:
    @pytest.fixture
    def freeq(self, freebase_instance):
        generator = InterpretationGenerator(
            freebase_instance.database, max_template_joins=2
        )
        catalog = TemplateCatalog(generator.templates)
        model = ATFModel(freebase_instance.database.require_index(), catalog)
        return FreeQ(generator, model, freebase_instance.ontology)

    def test_construct_succeeds(self, freeq, freebase_instance):
        workload = freebase_workload(freebase_instance, n_queries=4)
        assert workload
        for item in workload:
            result = freeq.construct(item.query, SimulatedUser(item.intended))
            assert result.success

    def test_concept_options_appear_in_transcripts(self, freeq, freebase_instance):
        workload = freebase_workload(freebase_instance, n_queries=6)
        transcripts = []
        for item in workload:
            result = freeq.construct(item.query, SimulatedUser(item.intended))
            transcripts.extend(d for d, _ok in result.transcript)
        assert any(
            "Person" in d or "CreativeWork" in d or "Organization" in d
            for d in transcripts
        )

    def test_top_interpretations(self, freeq, freebase_instance):
        workload = freebase_workload(freebase_instance, n_queries=2)
        top = freeq.top_interpretations(workload[0].query, n=3)
        assert 0 < len(top) <= 3
