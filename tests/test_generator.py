"""Unit tests for repro.core.generator (interpretation-space generation)."""

import pytest

from repro.core.generator import GeneratorConfig, InterpretationGenerator
from repro.core.interpretation import TableAtom, ValueAtom
from repro.core.keywords import Keyword, KeywordQuery


class TestKeywordAtoms:
    def test_value_atoms_found(self, mini_generator):
        atoms = mini_generator.keyword_atoms(Keyword(0, "hanks"))
        refs = {(a.table, a.attribute) for a in atoms if isinstance(a, ValueAtom)}
        assert ("actor", "name") in refs
        assert ("movie", "title") in refs

    def test_table_atoms_found(self, mini_generator):
        atoms = mini_generator.keyword_atoms(Keyword(0, "actor"))
        assert any(isinstance(a, TableAtom) and a.table == "actor" for a in atoms)

    def test_table_atoms_disabled(self, mini_db):
        gen = InterpretationGenerator(
            mini_db, config=GeneratorConfig(include_table_atoms=False)
        )
        atoms = gen.keyword_atoms(Keyword(0, "actor"))
        assert not any(isinstance(a, TableAtom) for a in atoms)

    def test_absent_keyword_no_atoms(self, mini_generator):
        assert mini_generator.keyword_atoms(Keyword(0, "zzz")) == []

    def test_atom_cap(self, mini_db):
        gen = InterpretationGenerator(mini_db, config=GeneratorConfig(max_atoms_per_keyword=1))
        assert len(gen.keyword_atoms(Keyword(0, "hanks"))) == 1

    def test_cap_keeps_most_frequent(self, mini_db):
        gen = InterpretationGenerator(mini_db, config=GeneratorConfig(max_atoms_per_keyword=1))
        (atom,) = gen.keyword_atoms(Keyword(0, "hanks"))
        # "hanks" is denser in actor.name (2/6) than movie.title (1/6).
        assert (atom.table, atom.attribute) == ("actor", "name")


class TestEffectiveKeywords:
    def test_misspelled_keyword_excluded(self, mini_generator):
        q = KeywordQuery.from_terms(["hanks", "zzz"])
        effective = mini_generator.effective_keywords(q)
        assert [k.term for k in effective] == ["hanks"]

    def test_all_effective(self, mini_generator):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        assert len(mini_generator.effective_keywords(q)) == 2


class TestEnumeration:
    def test_space_nonempty(self, mini_generator):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        space = mini_generator.interpretations(q)
        assert space

    def test_all_complete_and_valid(self, mini_generator):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        for interp in mini_generator.interpretations(q):
            assert interp.is_complete
            interp.validate()

    def test_intended_interpretation_present(self, mini_generator):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        space = mini_generator.interpretations(q)
        found = False
        for interp in space:
            tables = {(a.table, a.attribute) for a in interp.atoms if isinstance(a, ValueAtom)}
            if tables == {("actor", "name"), ("movie", "year")}:
                found = True
        assert found

    def test_minimality_enforced(self, mini_generator):
        """No interpretation has an empty endpoint table."""
        q = KeywordQuery.from_terms(["tom", "hanks"])
        for interp in mini_generator.interpretations(q):
            occupied = {slot for _a, slot in interp.assignment}
            for leaf in interp.template.leaf_positions():
                assert leaf in occupied

    def test_cap_on_interpretations(self, mini_db):
        gen = InterpretationGenerator(
            mini_db, config=GeneratorConfig(max_interpretations=3)
        )
        q = KeywordQuery.from_terms(["hanks", "2001"])
        assert len(gen.interpretations(q)) <= 3

    def test_empty_query_yields_nothing(self, mini_generator):
        assert mini_generator.interpretations(KeywordQuery.from_terms([])) == []

    def test_unmatchable_query_yields_nothing(self, mini_generator):
        assert mini_generator.interpretations(KeywordQuery.from_terms(["zzz"])) == []

    def test_space_size(self, mini_generator):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        assert mini_generator.space_size(q) == len(mini_generator.interpretations(q))

    def test_deterministic(self, mini_generator):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        a = [i.describe() for i in mini_generator.interpretations(q)]
        b = [i.describe() for i in mini_generator.interpretations(q)]
        assert a == b

    def test_require_nonempty_filters(self, mini_db):
        gen_all = InterpretationGenerator(mini_db)
        gen_nonempty = InterpretationGenerator(
            mini_db, config=GeneratorConfig(require_nonempty=True)
        )
        q = KeywordQuery.from_terms(["london", "2004"])
        all_space = gen_all.interpretations(q)
        nonempty = gen_nonempty.interpretations(q)
        assert len(nonempty) <= len(all_space)
        for interp in nonempty:
            assert interp.to_structured_query().has_results(mini_db)

    def test_duplicate_keywords_get_distinct_bindings(self, mini_generator):
        q = KeywordQuery.from_terms(["hanks", "hanks"])
        for interp in mini_generator.interpretations(q):
            positions = {a.keyword.position for a in interp.atoms}
            assert positions == {0, 1}
