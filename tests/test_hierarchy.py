"""Unit tests for repro.core.hierarchy (query hierarchy, Alg. 3.2 substrate)."""

import pytest

from repro.core.hierarchy import QueryHierarchy
from repro.core.keywords import KeywordQuery
from repro.core.options import AtomSetOption
from repro.core.probability import UniformModel


@pytest.fixture
def hierarchy(mini_generator, mini_model):
    q = KeywordQuery.from_terms(["hanks", "2001"])
    return QueryHierarchy(q, mini_generator, mini_model)


class TestExpansion:
    def test_initial_frontier_is_templates(self, hierarchy, mini_generator):
        assert len(hierarchy) == len(mini_generator.templates)
        assert hierarchy.level == 0

    def test_depth_counts_effective_keywords(self, hierarchy):
        assert hierarchy.depth == 2

    def test_expand_once_advances_level(self, hierarchy):
        hierarchy.expand_once()
        assert hierarchy.level == 1
        for node in hierarchy.frontier:
            assert len(node.assignment) == 1

    def test_expand_to_complete(self, hierarchy):
        hierarchy.expand_to_complete()
        assert hierarchy.at_complete_level()
        assert not hierarchy.can_expand()

    def test_complete_level_minimality(self, hierarchy):
        hierarchy.expand_to_complete()
        for node in hierarchy.frontier:
            occupied = {slot for _a, slot in node.assignment}
            assert all(leaf in occupied for leaf in node.template.leaf_positions())

    def test_generated_nodes_counted(self, hierarchy):
        before = hierarchy.generated_nodes
        hierarchy.expand_once()
        assert hierarchy.generated_nodes > before

    def test_max_frontier_cap(self, mini_generator, mini_model):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        h = QueryHierarchy(q, mini_generator, mini_model, max_frontier=3)
        h.expand_to_complete()
        assert len(h) <= 3

    def test_complete_interpretations_requires_full_expansion(self, hierarchy):
        with pytest.raises(RuntimeError):
            hierarchy.complete_interpretations()

    def test_complete_interpretations_valid(self, hierarchy):
        hierarchy.expand_to_complete()
        interps = hierarchy.complete_interpretations()
        assert interps
        for interp in interps:
            interp.validate()
            assert interp.is_complete


class TestPruning:
    def test_accept_keeps_matching_nodes(self, hierarchy):
        hierarchy.expand_to_complete()
        options = hierarchy.frontier_atoms()
        splitting = next(
            o
            for o in options
            if 0 < sum(o.matches(n.atoms) for n in hierarchy.frontier) < len(hierarchy)
        )
        hierarchy.accept(splitting)
        assert all(splitting.matches(n.atoms) for n in hierarchy.frontier)

    def test_reject_drops_matching_nodes(self, hierarchy):
        hierarchy.expand_to_complete()
        options = hierarchy.frontier_atoms()
        splitting = next(
            o
            for o in options
            if 0 < sum(o.matches(n.atoms) for n in hierarchy.frontier) < len(hierarchy)
        )
        hierarchy.reject(splitting)
        assert not any(splitting.matches(n.atoms) for n in hierarchy.frontier)

    def test_accept_then_reject_disjoint(self, hierarchy):
        hierarchy.expand_to_complete()
        n_before = len(hierarchy)
        option = hierarchy.frontier_atoms()[0]
        kept = sum(option.matches(n.atoms) for n in hierarchy.frontier)
        hierarchy.accept(option)
        assert len(hierarchy) == kept
        assert len(hierarchy) <= n_before


class TestProbabilities:
    def test_frontier_probabilities_sum_to_one(self, hierarchy):
        hierarchy.expand_to_complete()
        probs = hierarchy.frontier_probabilities()
        assert sum(probs) == pytest.approx(1.0)

    def test_option_probability_in_unit_interval(self, hierarchy):
        hierarchy.expand_to_complete()
        for option in hierarchy.frontier_atoms():
            p = hierarchy.option_probability(option)
            assert 0.0 <= p <= 1.0 + 1e-9

    def test_uniform_model_hierarchy(self, mini_generator):
        q = KeywordQuery.from_terms(["hanks"])
        h = QueryHierarchy(q, mini_generator, UniformModel())
        h.expand_to_complete()
        probs = h.frontier_probabilities()
        assert all(p == pytest.approx(probs[0]) for p in probs)

    def test_frontier_matches_generator_space(self, hierarchy, mini_generator):
        """Full expansion reproduces the generator's interpretation space."""
        hierarchy.expand_to_complete()
        frontier_atoms = {
            frozenset((a, s) for a, s in n.assignment) for n in hierarchy.frontier
        }
        q = KeywordQuery.from_terms(["hanks", "2001"])
        space_atoms = {
            frozenset(i.assignment) for i in mini_generator.interpretations(q)
        }
        assert frontier_atoms == space_atoms
