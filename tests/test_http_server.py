"""The HTTP/1.1 front end: parity with the TCP transport, edge frames,
shared admission, drain.

The invariants under test:

* **Parity** — ``POST /query`` answers rows byte-identical to sequential
  in-process execution (what ``repro query`` prints) for the same request,
  on the memory, sqlite and sqlite-sharded backends — the curl-equivalence
  the HTTP front end exists for.
* **Framing** — pipelined requests in one segment answer in order; a
  ``Content-Length`` body split across reads reassembles; an oversized
  body is discarded while it streams and answers 413 with the connection
  still usable; a malformed *body* is a per-request 400 (keep-alive
  persists); a malformed *head* is a 400 that closes (no resync point).
* **Shared admission** — the HTTP front end rides the same connection
  cap, in-flight queue and drain flag as the TCP listener: caps count
  across transports, saturation answers 503/``overloaded``, slow requests
  408/``timeout``.
* **Drain** — requests on open keep-alive connections answer
  503/``shutting-down`` with ``Connection: close``; ``GET /healthz``
  flips to 503 so load balancers stop routing.

No pytest-asyncio: each test drives its own ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import threading

import pytest

from repro.engine import QueryEngine, ResultCache
from repro.net import protocol
from repro.net.http import (
    HTTPParseError,
    HTTPQueryServer,
    HTTPRequestParser,
    ROUTES,
    STATUS_BY_ERROR,
    encode_query_request,
)
from repro.net.listener import TCPQueryServer, TCPServerConfig
from repro.net.loadgen import spawn_tcp_server
from repro.server import QueryServer

QUERIES = ["hanks 2001", "london", "summer", "stone hill"]


@pytest.fixture(autouse=True)
def fresh_process_cache():
    ResultCache.clear_process_cache()
    yield
    ResultCache.clear_process_cache()


@pytest.fixture
def imdb_factory(imdb_db):
    def factory(dataset, backend, db_path, shards, config):
        kwargs = {} if config is None else {"config": config}
        return QueryEngine(imdb_db, **kwargs)

    return factory


@contextlib.asynccontextmanager
async def serving_http(factory, config=None, *, pool_workers=8, datasets=None):
    """An in-process TCP core plus its HTTP front end, drained on exit."""
    with QueryServer(max_workers=pool_workers, engine_factory=factory) as pool:
        tcp = TCPQueryServer(pool, config, datasets=datasets)
        await tcp.start()
        front = HTTPQueryServer(tcp)
        await front.start()
        try:
            yield tcp, front
        finally:
            await tcp.drain()


async def connect(front):
    host, port = front.address
    return await asyncio.open_connection(host, port)


async def read_response(reader) -> tuple[int, dict[str, str], dict]:
    """One HTTP response: ``(status, headers, parsed JSON body)``."""
    head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), 30)
    lines = head.decode("ascii").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        if line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    body = await asyncio.wait_for(
        reader.readexactly(int(headers["content-length"])), 30
    )
    return status, headers, json.loads(body)


async def roundtrip(reader, writer, raw: bytes) -> tuple[int, dict]:
    writer.write(raw)
    await writer.drain()
    status, _headers, payload = await read_response(reader)
    return status, payload


async def ask(front, raw: bytes) -> tuple[int, dict]:
    """One-shot connection: send one request, read one response, close."""
    reader, writer = await connect(front)
    try:
        return await roundtrip(reader, writer, raw)
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


def get(path: str, extra: str = "") -> bytes:
    return f"GET {path} HTTP/1.1\r\nHost: t\r\n{extra}\r\n".encode()


def expected_wire_rows(engine: QueryEngine, text: str, k: int = 5):
    results = engine.run(text, k=k).results
    return [[[table, key] for table, key in result.row_uids()] for result in results]


class GatedEngine:
    def __init__(self, engine, gate: threading.Event):
        self._engine = engine
        self._gate = gate

    def run(self, *args, **kwargs):
        assert self._gate.wait(30), "gate never opened"
        return self._engine.run(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._engine, name)


# -- the parser alone ----------------------------------------------------------


class TestHTTPRequestParser:
    def test_pipelined_requests_in_one_segment(self):
        parser = HTTPRequestParser()
        segment = (
            encode_query_request("london", dataset="imdb", k=2)
            + get("/healthz")
            + encode_query_request("summer", k=1)
        )
        requests = parser.feed(segment)
        assert [(r.method, r.path) for r in requests] == [
            ("POST", "/query"),
            ("GET", "/healthz"),
            ("POST", "/query"),
        ]
        assert json.loads(requests[0].body)["query"] == "london"
        assert json.loads(requests[2].body) == {"query": "summer", "k": 1}

    def test_head_and_body_split_across_arbitrary_reads(self):
        raw = encode_query_request("stone hill", dataset="imdb", k=3)
        for chunk in (1, 2, 7):
            parser = HTTPRequestParser()
            collected = []
            for start in range(0, len(raw), chunk):
                collected += parser.feed(raw[start : start + chunk])
            assert len(collected) == 1
            assert json.loads(collected[0].body)["query"] == "stone hill"

    def test_oversized_body_is_discarded_not_buffered(self):
        parser = HTTPRequestParser(limit=64)
        body = b"x" * 1000
        head = f"POST /query HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
        requests = []
        for start in range(0, len(body), 100):
            assert len(parser._buffer) <= 64  # never balloons
            requests += parser.feed(
                (head.encode() if start == 0 else b"") + body[start : start + 100]
            )
        (request,) = requests
        assert request.oversized is True
        assert request.body == b""
        # The connection is resynchronized: the next request parses clean.
        (after,) = parser.feed(get("/healthz"))
        assert (after.method, after.path, after.oversized) == (
            "GET",
            "/healthz",
            False,
        )

    def test_oversized_head_raises(self):
        parser = HTTPRequestParser(limit=64)
        with pytest.raises(HTTPParseError):
            parser.feed(b"GET /" + b"a" * 100)

    def test_malformed_frames_raise(self):
        for raw in (
            b"nonsense\r\n\r\n",
            b"GET /x SPDY/9\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ):
            with pytest.raises(HTTPParseError):
                HTTPRequestParser().feed(raw)

    def test_keep_alive_defaults_per_version(self):
        parser = HTTPRequestParser()
        (one,) = parser.feed(b"GET /healthz HTTP/1.1\r\n\r\n")
        assert one.keep_alive is True
        (two,) = parser.feed(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert two.keep_alive is False
        (three,) = parser.feed(b"GET /healthz HTTP/1.0\r\n\r\n")
        assert three.keep_alive is False

    def test_query_string_is_stripped_from_path(self):
        (request,) = HTTPRequestParser().feed(b"GET /stats?pretty=1 HTTP/1.1\r\n\r\n")
        assert request.path == "/stats"


# -- parity (the curl-equivalence acceptance criterion) ------------------------


class TestHTTPParity:
    def test_query_rows_match_sequential_execution(self, imdb_factory, imdb_db):
        """`curl -d '{"dataset":"imdb","query":...}' :port/query` answers the
        same rows `repro query` prints — pinned against in-process
        sequential execution, concurrently, over keep-alive connections."""
        reference = QueryEngine(imdb_db)
        expected = {text: expected_wire_rows(reference, text) for text in QUERIES}

        async def drive():
            async with serving_http(imdb_factory) as (tcp, front):
                async def client(text):
                    reader, writer = await connect(front)
                    try:
                        answers = []
                        for _ in range(3):
                            answers.append(
                                await roundtrip(
                                    reader,
                                    writer,
                                    encode_query_request(text, dataset="imdb", k=5),
                                )
                            )
                        return text, answers
                    finally:
                        writer.close()
                        await writer.wait_closed()

                outcomes = await asyncio.gather(*(client(t) for t in QUERIES * 2))
                for text, answers in outcomes:
                    for status, payload in answers:
                        assert status == 200
                        assert payload["ok"] is True
                        assert payload["rows"] == expected[text]
                assert tcp.stats.requests_served == len(QUERIES) * 2 * 3

        asyncio.run(drive())

    @pytest.mark.parametrize(
        "backend,shards", [("sqlite", None), ("sqlite-sharded", 2)]
    )
    def test_parity_on_file_backed_stores(self, tmp_path, imdb_db, backend, shards):
        reference = QueryEngine(imdb_db)
        texts = QUERIES[:3]
        expected = {text: expected_wire_rows(reference, text) for text in texts}
        config = TCPServerConfig(
            backend=backend, db_path=str(tmp_path / "store.db"), shards=shards
        )

        async def drive():
            with QueryServer(max_workers=4) as pool:
                tcp = TCPQueryServer(pool, config)
                await tcp.start()
                front = HTTPQueryServer(tcp)
                await front.start()
                try:
                    for text in texts:
                        status, payload = await ask(
                            front, encode_query_request(text, k=5)
                        )
                        assert status == 200, payload
                        assert payload["rows"] == expected[text]
                finally:
                    await tcp.drain()

        asyncio.run(drive())

    def test_both_transports_answer_identical_payloads(self, imdb_factory):
        """One server, both doorways: the HTTP body equals the TCP line."""

        async def drive():
            async with serving_http(imdb_factory) as (tcp, front):
                host, port = tcp.address
                tcp_reader, tcp_writer = await asyncio.open_connection(host, port)
                try:
                    for text in QUERIES:
                        tcp_writer.write(protocol.encode_request(text, k=5))
                        await tcp_writer.drain()
                        over_tcp = json.loads(
                            await asyncio.wait_for(tcp_reader.readline(), 30)
                        )
                        _status, over_http = await ask(
                            front, encode_query_request(text, k=5)
                        )
                        del over_tcp["stats"], over_http["stats"]  # timings differ
                        assert over_http == over_tcp
                finally:
                    tcp_writer.close()
                    with contextlib.suppress(Exception):
                        await tcp_writer.wait_closed()

        asyncio.run(drive())


# -- wire-level behavior -------------------------------------------------------


class TestHTTPWireBehavior:
    def test_pipelined_requests_answer_in_order(self, imdb_factory):
        async def drive():
            async with serving_http(imdb_factory) as (_tcp, front):
                reader, writer = await connect(front)
                try:
                    writer.write(
                        encode_query_request("london", dataset="imdb", k=2)
                        + get("/healthz")
                        + encode_query_request("summer", k=2)
                    )
                    await writer.drain()
                    first = await read_response(reader)
                    second = await read_response(reader)
                    third = await read_response(reader)
                    assert first[2]["query"] == "london"
                    assert second[2]["status"] == "serving"
                    assert third[2]["query"] == "summer"
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(drive())

    def test_split_body_across_writes(self, imdb_factory):
        async def drive():
            async with serving_http(imdb_factory) as (_tcp, front):
                reader, writer = await connect(front)
                try:
                    raw = encode_query_request("london", dataset="imdb", k=2)
                    middle = len(raw) - 9  # splits inside the JSON body
                    writer.write(raw[:middle])
                    await writer.drain()
                    await asyncio.sleep(0.05)  # the server sees a partial body
                    writer.write(raw[middle:])
                    await writer.drain()
                    status, _headers, payload = await read_response(reader)
                    assert status == 200 and payload["ok"] is True
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(drive())

    def test_oversized_body_answers_413_and_connection_survives(
        self, imdb_factory
    ):
        async def drive():
            config = TCPServerConfig(max_request_bytes=256)
            async with serving_http(imdb_factory, config) as (tcp, front):
                reader, writer = await connect(front)
                try:
                    body = b'{"query": "' + b"x" * 500 + b'"}'
                    writer.write(
                        b"POST /query HTTP/1.1\r\nHost: t\r\n"
                        + f"Content-Length: {len(body)}\r\n\r\n".encode()
                        + body
                    )
                    await writer.drain()
                    status, _headers, payload = await read_response(reader)
                    assert status == 413
                    assert payload["error"] == protocol.ERR_OVERSIZED
                    # Same connection, next request: served normally.
                    status, payload = await roundtrip(
                        reader, writer, encode_query_request("london", k=2)
                    )
                    assert status == 200 and payload["ok"] is True
                    assert tcp.stats.protocol_errors == 1
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(drive())

    def test_malformed_body_is_400_and_keep_alive_persists(self, imdb_factory):
        async def drive():
            async with serving_http(imdb_factory) as (tcp, front):
                reader, writer = await connect(front)
                try:
                    bad = b"not json"
                    writer.write(
                        b"POST /query HTTP/1.1\r\nHost: t\r\n"
                        + f"Content-Length: {len(bad)}\r\n\r\n".encode()
                        + bad
                    )
                    await writer.drain()
                    status, headers, payload = await read_response(reader)
                    assert status == 400
                    assert payload["error"] == protocol.ERR_MALFORMED
                    assert headers["connection"] == "keep-alive"
                    status, payload = await roundtrip(
                        reader, writer, encode_query_request("london", k=2)
                    )
                    assert status == 200 and payload["ok"] is True
                    assert tcp.stats.protocol_errors == 1
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(drive())

    def test_malformed_head_is_400_and_closes(self, imdb_factory):
        async def drive():
            async with serving_http(imdb_factory) as (_tcp, front):
                reader, writer = await connect(front)
                try:
                    writer.write(b"EXPLODE\r\n\r\n")
                    await writer.drain()
                    status, headers, payload = await read_response(reader)
                    assert status == 400
                    assert payload["error"] == protocol.ERR_MALFORMED
                    assert headers["connection"] == "close"
                    assert await reader.read() == b""  # closed after the answer
                finally:
                    writer.close()

        asyncio.run(drive())

    def test_unknown_route_and_method(self, imdb_factory):
        async def drive():
            async with serving_http(imdb_factory) as (_tcp, front):
                status, payload = await ask(front, get("/nope"))
                assert status == 404 and payload["error"] == "not-found"
                status, payload = await ask(
                    front, b"DELETE /query HTTP/1.1\r\nHost: t\r\n\r\n"
                )
                assert status == 405
                assert payload["error"] == "method-not-allowed"
                assert "POST" in payload["detail"]

        asyncio.run(drive())

    def test_unknown_dataset_is_404(self, imdb_factory):
        async def drive():
            async with serving_http(imdb_factory) as (tcp, front):
                status, payload = await ask(
                    front, encode_query_request("london", dataset="lyrics")
                )
                assert status == 404
                assert payload["error"] == protocol.ERR_UNKNOWN_DATASET
                assert tcp.server.pooled_engines == 1  # nothing built

        asyncio.run(drive())

    def test_connection_close_is_honored(self, imdb_factory):
        async def drive():
            async with serving_http(imdb_factory) as (_tcp, front):
                reader, writer = await connect(front)
                try:
                    writer.write(get("/healthz", "Connection: close\r\n"))
                    await writer.drain()
                    status, headers, _payload = await read_response(reader)
                    assert status == 200
                    assert headers["connection"] == "close"
                    assert await reader.read() == b""
                finally:
                    writer.close()

        asyncio.run(drive())

    def test_healthz_and_stats_shapes(self, imdb_factory):
        async def drive():
            async with serving_http(imdb_factory) as (_tcp, front):
                status, payload = await ask(front, get("/healthz"))
                assert status == 200
                assert payload["status"] == "serving"
                assert payload["datasets"] == ["imdb"]
                await ask(front, encode_query_request("london", k=3))
                status, payload = await ask(front, get("/stats"))
                assert status == 200
                assert payload["listener"]["requests_served"] == 1
                assert payload["engine"]["sql_statements"] >= 1
                assert payload["engine_pool"]["pooled_engines"] == 1
                assert payload["draining"] is False

        asyncio.run(drive())


# -- shared admission ----------------------------------------------------------


class TestSharedAdmission:
    def test_connection_cap_counts_across_transports(self, imdb_factory):
        async def drive():
            config = TCPServerConfig(max_connections=2)
            async with serving_http(imdb_factory, config) as (tcp, front):
                host, port = tcp.address
                # Two TCP connections fill the shared cap...
                tcp_conns = [
                    await asyncio.open_connection(host, port) for _ in range(2)
                ]
                # ...so the HTTP doorway refuses the third, with the body
                # carrying the same protocol error code TCP clients get.
                reader, writer = await connect(front)
                status, _headers, payload = await read_response(reader)
                assert status == 503
                assert payload["error"] == protocol.ERR_TOO_MANY_CONNECTIONS
                assert await reader.read() == b""
                writer.close()
                for _r, w in tcp_conns:
                    w.close()

        asyncio.run(drive())

    def test_saturated_queue_answers_503_overloaded(self, imdb_db):
        gate = threading.Event()

        def factory(dataset, backend, db_path, shards, config):
            return GatedEngine(QueryEngine(imdb_db), gate)

        async def drive():
            config = TCPServerConfig(queue_limit=2)
            async with serving_http(factory, config, pool_workers=1) as (
                tcp,
                front,
            ):
                connections = [await connect(front) for _ in range(3)]
                blocked = [
                    asyncio.ensure_future(
                        roundtrip(r, w, encode_query_request("london"))
                    )
                    for r, w in connections[:2]
                ]
                for _ in range(500):
                    if tcp.inflight == 2:
                        break
                    await asyncio.sleep(0.01)
                assert tcp.inflight == 2
                reader, writer = connections[2]
                status, payload = await roundtrip(
                    reader, writer, encode_query_request("london")
                )
                assert status == 503
                assert payload["error"] == protocol.ERR_OVERLOADED
                assert tcp.stats.requests_rejected_overload == 1
                gate.set()
                for status, payload in await asyncio.gather(*blocked):
                    assert status == 200 and payload["ok"] is True
                for _r, w in connections:
                    w.close()

        try:
            asyncio.run(drive())
        finally:
            gate.set()

    def test_request_timeout_answers_408(self, imdb_db):
        gate = threading.Event()

        def factory(dataset, backend, db_path, shards, config):
            return GatedEngine(QueryEngine(imdb_db), gate)

        async def drive():
            config = TCPServerConfig(request_timeout=0.05, drain_timeout=30)
            async with serving_http(factory, config, pool_workers=1) as (
                tcp,
                front,
            ):
                status, payload = await ask(front, encode_query_request("london"))
                assert status == 408
                assert payload["error"] == protocol.ERR_TIMEOUT
                assert tcp.stats.requests_timed_out == 1
                gate.set()

        try:
            asyncio.run(drive())
        finally:
            gate.set()


# -- drain ---------------------------------------------------------------------


class TestHTTPDrain:
    def test_drain_refuses_keep_alive_requests_and_closes(self, imdb_db):
        gate = threading.Event()

        def factory(dataset, backend, db_path, shards, config):
            return GatedEngine(QueryEngine(imdb_db), gate)

        async def drive():
            config = TCPServerConfig(drain_timeout=30)
            async with serving_http(factory, config, pool_workers=2) as (
                tcp,
                front,
            ):
                host, port = front.address
                inflight = await connect(front)
                open_conn = await connect(front)  # idle keep-alive
                pending = asyncio.ensure_future(
                    roundtrip(*inflight, encode_query_request("hanks 2001"))
                )
                for _ in range(500):
                    if tcp.inflight == 1:
                        break
                    await asyncio.sleep(0.01)
                assert tcp.inflight == 1

                drain = asyncio.ensure_future(tcp.drain())
                while not tcp.draining:
                    await asyncio.sleep(0.01)
                # The HTTP listening socket is closed with the TCP one.
                with pytest.raises(OSError):
                    await asyncio.open_connection(host, port)
                # A request on the idle keep-alive connection is refused
                # with 503/shutting-down and the connection closes.
                reader, writer = open_conn
                writer.write(encode_query_request("london"))
                await writer.drain()
                status, headers, payload = await read_response(reader)
                assert status == 503
                assert payload["error"] == protocol.ERR_SHUTTING_DOWN
                assert headers["connection"] == "close"
                assert await reader.read() == b""
                # The in-flight request still completes and answers.
                gate.set()
                status, payload = await pending
                assert status == 200 and payload["ok"] is True
                assert await drain is True
                writer.close()
                inflight[1].close()

        try:
            asyncio.run(drive())
        finally:
            gate.set()

    def test_healthz_reports_draining(self, imdb_factory):
        async def drive():
            async with serving_http(imdb_factory) as (tcp, front):
                reader, writer = await connect(front)
                try:
                    tcp.begin_drain()
                    writer.write(get("/healthz"))
                    await writer.drain()
                    status, _headers, payload = await read_response(reader)
                    assert status == 503
                    assert payload["status"] == "draining"
                finally:
                    writer.close()

        asyncio.run(drive())


# -- routes/status tables stay consistent --------------------------------------


def test_every_protocol_error_code_maps_to_a_status():
    codes = {
        value
        for name, value in vars(protocol).items()
        if name.startswith("ERR_") and isinstance(value, str)
    }
    assert codes <= set(STATUS_BY_ERROR)
    assert all(100 <= status <= 599 for status in STATUS_BY_ERROR.values())


def test_routes_table_shape():
    assert ("POST", "/query") in ROUTES
    assert ("GET", "/healthz") in ROUTES
    assert ("GET", "/stats") in ROUTES


# -- the real thing: a spawned serve --http process ----------------------------


def _http_ask(host: str, port: int, raw: bytes, timeout: float = 30) -> dict:
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(raw)
        buffered = b""
        while b"\r\n\r\n" not in buffered:
            buffered += sock.recv(65536)
        head, _, rest = buffered.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value)
        while len(rest) < length:
            rest += sock.recv(65536)
    return json.loads(rest[:length])


class TestServerProcess:
    def test_spawned_http_server_serves_and_drains(self):
        server = spawn_tcp_server(http=True)
        assert server.http_port is not None and server.http_port != server.port
        try:
            payload = _http_ask(
                server.host,
                server.http_port,
                encode_query_request("london", dataset="imdb", k=5),
            )
            assert payload["ok"] is True and payload["rows"], payload
            health = _http_ask(
                server.host, server.http_port, get("/healthz")
            )
            assert health["status"] == "serving"
        finally:
            assert server.terminate() == 0
