"""Unit tests for repro.db.index (inverted index + statistics)."""

import pytest


class TestPostings:
    def test_attributes_containing(self, mini_db):
        idx = mini_db.require_index()
        refs = idx.attributes_containing("hanks")
        assert ("actor", "name") in refs
        assert ("movie", "title") in refs

    def test_absent_term(self, mini_db):
        idx = mini_db.require_index()
        assert idx.attributes_containing("zzz") == []
        assert idx.tables_containing("zzz") == set()

    def test_tables_containing(self, mini_db):
        idx = mini_db.require_index()
        assert idx.tables_containing("hanks") == {"actor", "movie"}

    def test_tuple_keys(self, mini_db):
        idx = mini_db.require_index()
        assert idx.tuple_keys("hanks", "actor", "name") == {1, 2}
        assert idx.tuple_keys("hanks", "movie", "title") == {2}

    def test_posting_counts(self, mini_db):
        idx = mini_db.require_index()
        posting = idx.posting("hanks", "actor", "name")
        assert posting.occurrences == 2
        assert posting.document_frequency == 2

    def test_non_textual_attributes_not_indexed(self, mini_db):
        idx = mini_db.require_index()
        assert idx.posting("1", "actor", "id") is None

    def test_schema_term_match(self, mini_db):
        idx = mini_db.require_index()
        assert idx.tables_matching_schema_term("actor") == {"actor"}
        assert idx.tables_matching_schema_term("hanks") == set()

    def test_vocabulary_sorted(self, mini_db):
        vocab = mini_db.require_index().vocabulary()
        assert vocab == sorted(vocab)
        assert "hanks" in vocab


class TestStatistics:
    def test_tf_normalized(self, mini_db):
        idx = mini_db.require_index()
        # actor.name holds 6 tokens total; "hanks" occurs twice.
        assert idx.tf("hanks", "actor", "name") == pytest.approx(2 / 6)

    def test_tf_zero_for_absent(self, mini_db):
        idx = mini_db.require_index()
        assert idx.tf("zzz", "actor", "name") == 0.0

    def test_atf_adds_alpha(self, mini_db):
        idx = mini_db.require_index()
        assert idx.atf("hanks", "actor", "name") == pytest.approx(
            idx.tf("hanks", "actor", "name") + idx.alpha
        )

    def test_atf_positive_for_absent(self, mini_db):
        idx = mini_db.require_index()
        assert idx.atf("zzz", "actor", "name") > 0.0

    def test_df(self, mini_db):
        idx = mini_db.require_index()
        assert idx.df("hanks", "actor") == 2
        assert idx.df("hanks", "movie") == 1
        assert idx.df("zzz", "actor") == 0

    def test_idf_decreases_with_df(self, mini_db):
        idx = mini_db.require_index()
        assert idx.idf("zzz", "actor") > idx.idf("hanks", "actor")

    def test_idf_positive(self, mini_db):
        idx = mini_db.require_index()
        assert idx.idf("hanks", "actor") > 0

    def test_attribute_statistics(self, mini_db):
        idx = mini_db.require_index()
        stats = idx.attribute_statistics("actor", "name")
        assert stats.cell_count == 3
        assert stats.total_tokens == 6

    def test_attribute_statistics_missing(self, mini_db):
        stats = mini_db.require_index().attribute_statistics("actor", "ghost")
        assert stats.cell_count == 0


class TestJointFrequency:
    def test_joint_cell_frequency(self, mini_db):
        idx = mini_db.require_index()
        # "tom hanks": exactly 1 of 3 actor.name cells contains both.
        assert idx.joint_cell_frequency(["tom", "hanks"], "actor", "name") == pytest.approx(1 / 3)

    def test_joint_exceeds_product_for_cooccurring(self, mini_db):
        idx = mini_db.require_index()
        joint = idx.joint_cell_frequency(["tom", "hanks"], "actor", "name")
        product = idx.tf("tom", "actor", "name") * idx.tf("hanks", "actor", "name")
        assert joint > product

    def test_joint_zero_when_disjoint(self, mini_db):
        idx = mini_db.require_index()
        assert idx.joint_cell_frequency(["tom", "london"], "actor", "name") == 0.0

    def test_joint_empty_terms(self, mini_db):
        assert mini_db.require_index().joint_cell_frequency([], "actor", "name") == 0.0

    def test_candidate_tuple_keys(self, mini_db):
        idx = mini_db.require_index()
        assert idx.candidate_tuple_keys(["tom", "hanks"], "actor", "name") == {1}
        assert idx.candidate_tuple_keys(["tom", "london"], "actor", "name") == set()


class TestIncrementalIndexing:
    def test_post_index_insert_searchable(self, mini_db):
        mini_db.insert("actor", {"id": 77, "name": "rita wilson"})
        idx = mini_db.require_index()
        assert idx.tuple_keys("wilson", "actor", "name") == {77}

    def test_post_index_insert_updates_statistics(self, mini_db):
        idx = mini_db.require_index()
        df_before = idx.df("hanks", "actor")
        mini_db.insert("actor", {"id": 78, "name": "jim hanks"})
        assert idx.df("hanks", "actor") == df_before + 1

    def test_post_index_insert_selectable(self, mini_db):
        mini_db.insert("movie", {"id": 79, "title": "volunteers", "year": "1985"})
        rows = mini_db.select("movie", [("title", ("volunteers",))])
        assert [t.key for t in rows] == [79]

    def test_insert_many_maintains_index(self, mini_db):
        mini_db.insert_many(
            "actor",
            [{"id": 80, "name": "peter scolari"}, {"id": 81, "name": "peter falk"}],
        )
        idx = mini_db.require_index()
        assert idx.tuple_keys("peter", "actor", "name") == {80, 81}

    def test_tuple_counts_updated(self, mini_db):
        idx = mini_db.require_index()
        idf_rare_before = idx.idf("zzz", "actor")
        for i in range(90, 96):
            mini_db.insert("actor", {"id": i, "name": f"extra{i}"})
        # More tuples, still zero df: IDF of an absent term rises.
        assert idx.idf("zzz", "actor") > idf_rare_before
