"""Regression tests: incremental index maintenance must match a rebuild.

``Database.insert`` after ``build_indexes`` keeps the inverted index live via
``InvertedIndex.add_tuple``; ``Database.add_table`` must register new tables
(schema terms, tuple counts) the same way.  Historically ``add_table`` after
an index build silently drifted from a from-scratch rebuild:
``tables_matching_schema_term`` never saw the new table and IDF used a
missing tuple count.  These tests pin the invariant: after any sequence of
incremental mutations through the backend API, the index state equals a
from-scratch rebuild.
"""

from __future__ import annotations

import pytest

from repro.db.backends import available_backends
from repro.db.index import InvertedIndex
from repro.db.schema import Attribute, Table
from tests.conftest import build_mini_db


def rebuilt_snapshot(db):
    """Index statistics of a from-scratch rebuild over the same rows."""
    return InvertedIndex(db.tokenizer).build(db).stats_snapshot()


@pytest.mark.parametrize("backend", available_backends())
class TestIncrementalIndexConsistency:
    def test_inserts_after_build(self, backend):
        db = build_mini_db(backend)
        db.insert("actor", {"id": 4, "name": "tom cruise"})
        db.insert("movie", {"id": 4, "title": "hanks of london", "year": "2001"})
        db.insert("acts", {"id": 5, "actor_id": 4, "movie_id": 4, "role": "pilot"})
        assert db.index.stats_snapshot() == rebuilt_snapshot(db)

    def test_add_table_after_build(self, backend):
        db = build_mini_db(backend)
        db.add_table(Table("studio", [Attribute("name"), Attribute("id", textual=False)]))
        assert db.index.stats_snapshot() == rebuilt_snapshot(db)
        # The table is visible to metadata matching without a rebuild.
        assert db.index.tables_matching_schema_term("studio") == {"studio"}

    def test_add_table_then_insert(self, backend):
        db = build_mini_db(backend)
        db.add_table(Table("studio", [Attribute("name"), Attribute("id", textual=False)]))
        db.insert("studio", {"id": 1, "name": "hanks brothers pictures"})
        db.insert("studio", {"id": 2, "name": "london films"})
        assert db.index.stats_snapshot() == rebuilt_snapshot(db)
        assert "studio" in db.index.tables_containing("hanks")
        # IDF must see the table's tuple count, not a stale zero.
        assert db.index.idf("hanks", "studio") == pytest.approx(
            InvertedIndex(db.tokenizer).build(db).idf("hanks", "studio")
        )

    def test_mixed_mutation_sequence(self, backend):
        db = build_mini_db(backend)
        db.insert("actor", {"id": 4, "name": "meg london"})
        db.add_table(Table("award", [Attribute("title"), Attribute("id", textual=False)]))
        db.insert("award", {"id": 1, "title": "golden hanks"})
        db.insert("movie", {"id": 4, "title": "award season", "year": "1999"})
        assert db.index.stats_snapshot() == rebuilt_snapshot(db)


def test_snapshot_detects_divergence():
    """The comparison helper is not vacuous: different content differs."""
    a = build_mini_db()
    b = build_mini_db()
    b.insert("actor", {"id": 4, "name": "extra person"})
    assert a.index.stats_snapshot() != b.index.stats_snapshot()
