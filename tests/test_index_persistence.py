"""Persisted inverted-index postings (SQLite side tables).

``SQLiteBackend.build_indexes()`` on a reopened store must load the stored
postings — producing an index indistinguishable from a from-scratch rebuild —
and must *refuse* them whenever the store content or the index configuration
no longer matches what they were built under.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.db.backends.sqlite import SQLiteBackend
from repro.db.index import InvertedIndex
from repro.db.tokenizer import DEFAULT_STOPWORDS, Tokenizer
from tests.conftest import build_mini_db, mini_schema


def _reopen(path, **kwargs) -> SQLiteBackend:
    return SQLiteBackend(mini_schema(), path=path, **kwargs)


def _table_exists(conn: sqlite3.Connection, name: str) -> bool:
    return bool(
        conn.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = ?", (name,)
        ).fetchone()
    )


@pytest.fixture
def populated_path(tmp_path):
    path = tmp_path / "mini.sqlite"
    build_mini_db("sqlite", db_path=path).close()
    return path


def test_export_restore_round_trip(mini_db):
    index = mini_db.require_index()
    clone = InvertedIndex.restore(
        index.export_state(), tokenizer=index.tokenizer, alpha=index.alpha
    )
    assert clone.stats_snapshot() == index.stats_snapshot()
    assert clone.atf("hanks", "actor", "name") == index.atf("hanks", "actor", "name")


class TestPersistedPostings:
    def test_loaded_index_equals_rebuilt(self, populated_path):
        loaded_db = _reopen(populated_path)
        loaded = loaded_db.build_indexes()
        rebuilt_db = _reopen(populated_path, persist_index=False)
        rebuilt = rebuilt_db.build_indexes()
        assert loaded.stats_snapshot() == rebuilt.stats_snapshot()
        loaded_db.close()
        rebuilt_db.close()

    def test_cold_open_does_not_scan(self, populated_path, monkeypatch):
        def forbidden(self, database):  # pragma: no cover - failure path
            raise AssertionError("cold open fell back to a full index rebuild")

        monkeypatch.setattr(InvertedIndex, "build", forbidden)
        db = _reopen(populated_path)
        index = db.build_indexes()
        assert index.tuple_keys("hanks", "actor", "name") == {1, 2}
        db.close()

    def test_loaded_index_stays_live(self, populated_path):
        """Incremental maintenance keeps working on a restored index."""
        db = _reopen(populated_path)
        db.build_indexes()
        db.insert("actor", {"id": 9, "name": "bruno hanks"})
        assert 9 in db.index.tuple_keys("hanks", "actor", "name")
        fresh = InvertedIndex(db.tokenizer).build(db)
        assert db.index.stats_snapshot() == fresh.stats_snapshot()
        db.close()

    def test_post_build_insert_resaves_on_close(self, populated_path):
        db = _reopen(populated_path)
        db.build_indexes()
        db.insert("actor", {"id": 9, "name": "bruno hanks"})
        db.close()
        # The re-saved postings match the mutated content: the next open
        # loads them (no rebuild) and sees the new row.
        reopened = _reopen(populated_path)
        index = reopened.build_indexes()
        meta = dict(
            reopened._conn.execute("SELECT key, value FROM _repro_index_meta")
        )
        assert meta["fingerprint"] == reopened.content_fingerprint()
        assert 9 in index.tuple_keys("hanks", "actor", "name")
        reopened.close()

    def test_persist_disabled_writes_no_side_tables(self, tmp_path):
        path = tmp_path / "plain.sqlite"
        db = SQLiteBackend(mini_schema(), path=path, persist_index=False)
        db.insert("actor", {"id": 1, "name": "tom hanks"})
        db.build_indexes()
        db.close()
        raw = sqlite3.connect(path)
        tables = {
            row[0]
            for row in raw.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        raw.close()
        assert not any(name.startswith("_repro_index_") for name in tables)

    def test_stale_fingerprint_forces_rebuild(self, populated_path):
        raw = sqlite3.connect(populated_path)
        raw.execute(
            "UPDATE _repro_index_meta SET value = 'stale' WHERE key = 'fingerprint'"
        )
        raw.commit()
        raw.close()
        db = _reopen(populated_path)
        index = db.build_indexes()  # falls back to the scan
        fresh = InvertedIndex(db.tokenizer).build(db)
        assert index.stats_snapshot() == fresh.stats_snapshot()
        db.close()

    def test_tokenizer_mismatch_forces_rebuild(self, populated_path):
        stopping = Tokenizer(stopwords=DEFAULT_STOPWORDS)
        db = SQLiteBackend(mini_schema(), tokenizer=stopping, path=populated_path)
        index = db.build_indexes()
        # A loaded index would contain the no-stopwords postings; the rebuilt
        # one must reflect the requested tokenizer.
        fresh = InvertedIndex(stopping).build(db)
        assert index.stats_snapshot() == fresh.stats_snapshot()
        db.close()

    def test_foreign_shape_side_tables_are_replaced(self, populated_path):
        """Side tables left by another version of this code (different
        column set) must not crash the open: saving drops and rebuilds them."""
        raw = sqlite3.connect(populated_path)
        raw.execute("DROP TABLE _repro_index_postings")
        raw.execute("CREATE TABLE _repro_index_postings (term TEXT, blob TEXT)")
        raw.execute("DROP TABLE _repro_result_cache") if _table_exists(
            raw, "_repro_result_cache"
        ) else None
        raw.execute("CREATE TABLE _repro_result_cache (k TEXT)")
        raw.commit()
        raw.close()
        db = _reopen(populated_path)
        index = db.build_indexes()  # load fails -> rebuild -> re-save over the foreign shape
        assert index.tuple_keys("hanks", "actor", "name") == {1, 2}
        db.cached_result_put("fp", "key", "[]")  # drops + recreates the cache table
        assert db.cached_result_get("fp", "key") == "[]"
        db.close()
        # The next open loads the re-saved postings again.
        reopened = _reopen(populated_path)
        assert reopened.build_indexes().tuple_keys("hanks", "actor", "name") == {1, 2}
        reopened.close()

    def test_corrupt_side_tables_fall_back(self, populated_path):
        raw = sqlite3.connect(populated_path)
        raw.execute("UPDATE _repro_index_postings SET keys = 'not json'")
        raw.commit()
        raw.close()
        db = _reopen(populated_path)
        index = db.build_indexes()
        fresh = InvertedIndex(db.tokenizer).build(db)
        assert index.stats_snapshot() == fresh.stats_snapshot()
        db.close()
