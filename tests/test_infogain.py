"""Unit tests for repro.iqp.infogain (Eqs. 3.11-3.13)."""

import pytest

from repro.iqp.infogain import conditional_entropy, information_gain


class TestConditionalEntropy:
    def test_perfect_split_zero_entropy(self):
        # Two equally likely queries; option isolates one.
        assert conditional_entropy([0.5, 0.5], [True, False]) == pytest.approx(0.0)

    def test_useless_option_keeps_entropy(self):
        # Option subsumes everything: no information.
        h = conditional_entropy([0.25] * 4, [True] * 4)
        assert h == pytest.approx(2.0)

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            conditional_entropy([0.5], [True, False])

    def test_unnormalized_weights_accepted(self):
        a = conditional_entropy([1.0, 1.0, 2.0], [True, False, False])
        b = conditional_entropy([0.25, 0.25, 0.5], [True, False, False])
        assert a == pytest.approx(b)


class TestInformationGain:
    def test_even_split_maximal(self):
        probs = [0.25] * 4
        even = information_gain(probs, [True, True, False, False])
        uneven = information_gain(probs, [True, False, False, False])
        assert even > uneven

    def test_even_split_gains_one_bit(self):
        assert information_gain([0.25] * 4, [True, True, False, False]) == pytest.approx(1.0)

    def test_no_split_zero_gain(self):
        assert information_gain([0.5, 0.5], [True, True]) == pytest.approx(0.0)
        assert information_gain([0.5, 0.5], [False, False]) == pytest.approx(0.0)

    def test_gain_nonnegative(self):
        import itertools

        probs = [0.4, 0.3, 0.2, 0.1]
        for pattern in itertools.product([True, False], repeat=4):
            assert information_gain(probs, list(pattern)) >= -1e-12

    def test_gain_bounded_by_entropy(self):
        from repro.core.probability import entropy, normalize

        probs = [0.4, 0.3, 0.2, 0.1]
        h = entropy(normalize(probs))
        assert information_gain(probs, [True, False, True, False]) <= h + 1e-12

    def test_probability_weighted_split(self):
        """With skewed probabilities, the best split tracks the mass, not
        the count: isolating the heavy query beats halving the count."""
        probs = [0.7, 0.1, 0.1, 0.1]
        isolate_heavy = information_gain(probs, [True, False, False, False])
        halve_count = information_gain(probs, [True, True, False, False])
        assert isolate_heavy > halve_count
