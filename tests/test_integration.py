"""Integration tests across modules: end-to-end flows of all four systems."""

import pytest

from repro.baselines.sqak import SqakRanker
from repro.core.generator import InterpretationGenerator
from repro.core.probability import ATFModel, DivQModel, TemplateCatalog, rank_interpretations
from repro.datasets.workload import imdb_workload, lyrics_workload, train_catalog_from_workload
from repro.divq.diversify import diversify
from repro.divq.metrics import alpha_ndcg_w, subtopic_relevance, ws_recall
from repro.divq.similarity import jaccard_similarity
from repro.iqp.ranking import Ranker
from repro.iqp.session import ConstructionSession
from repro.user.oracle import SimulatedUser


@pytest.fixture(scope="module")
def imdb_stack(imdb_db):
    generator = InterpretationGenerator(imdb_db, max_template_joins=4)
    catalog = TemplateCatalog(generator.templates)
    model = ATFModel(imdb_db.require_index(), catalog)
    workload = imdb_workload(imdb_db, n_queries=12)
    return imdb_db, generator, model, workload


class TestIQPEndToEnd:
    def test_construction_resolves_most_queries(self, imdb_stack):
        db, generator, model, workload = imdb_stack
        successes = 0
        for item in workload:
            user = SimulatedUser(item.intended)
            result = ConstructionSession(item.query, generator, model).run(user)
            successes += result.success
        assert successes >= len(workload) * 0.8

    def test_construction_cost_below_space_size(self, imdb_stack):
        """Construction must beat scanning the whole interpretation space."""
        db, generator, model, workload = imdb_stack
        for item in workload:
            space_size = generator.space_size(item.query)
            if space_size < 5:
                continue
            user = SimulatedUser(item.intended)
            result = ConstructionSession(item.query, generator, model).run(user)
            assert result.options_evaluated < space_size

    def test_atf_model_at_least_as_good_as_uniform(self, imdb_stack):
        from repro.core.probability import UniformModel

        db, generator, model, workload = imdb_stack
        atf_total = 0
        uniform_total = 0
        for item in workload:
            u1, u2 = SimulatedUser(item.intended), SimulatedUser(item.intended)
            atf_total += ConstructionSession(item.query, generator, model).run(u1).options_evaluated
            uniform_total += (
                ConstructionSession(item.query, generator, UniformModel()).run(u2).options_evaluated
            )
        # The ATF estimates cut cost on average (Fig. 3.5); allow small
        # per-workload noise since individual queries can go either way.
        assert atf_total <= uniform_total * 1.15 + 2

    def test_query_log_training_helps_lyrics(self, lyrics_db):
        """The (ATF, TLog) configuration should not cost more interactions
        than (ATF, Tequal) on Lyrics, whose template usage is highly skewed."""
        generator = InterpretationGenerator(lyrics_db, max_template_joins=4)
        workload = lyrics_workload(lyrics_db, n_queries=10)
        idx = lyrics_db.require_index()
        tequal = ATFModel(idx, TemplateCatalog(generator.templates))
        tlog_catalog = TemplateCatalog(generator.templates)
        train_catalog_from_workload(tlog_catalog, generator.templates, workload)
        tlog = ATFModel(idx, tlog_catalog)
        cost_equal = cost_log = 0
        for item in workload:
            u1, u2 = SimulatedUser(item.intended), SimulatedUser(item.intended)
            cost_equal += ConstructionSession(item.query, generator, tequal).run(u1).options_evaluated
            cost_log += ConstructionSession(item.query, generator, tlog).run(u2).options_evaluated
        assert cost_log <= cost_equal

    def test_construction_variance_below_ranking(self, imdb_stack):
        """Fig. 3.6's key claim: construction cost varies far less than the
        rank of the intended interpretation."""
        import statistics

        db, generator, model, workload = imdb_stack
        ranker = Ranker(generator, model)
        ranks, costs = [], []
        for item in workload:
            rank = ranker.rank_of(item.query, item.intended)
            if rank is None:
                continue
            ranks.append(rank)
            user = SimulatedUser(item.intended)
            costs.append(
                ConstructionSession(item.query, generator, model).run(user).options_evaluated
            )
        assert len(ranks) >= 5
        assert max(costs) <= max(ranks)
        if len(ranks) >= 2 and statistics.pvariance(ranks) > 0:
            assert statistics.pvariance(costs) <= statistics.pvariance(ranks)


class TestDivQEndToEnd:
    def test_diversification_reduces_redundancy(self, imdb_stack):
        """Across the workload, diversified top-5 lists must cover at least
        as many distinct result tuples as the relevance-ranked top-5."""
        db, generator, _model, workload = imdb_stack
        catalog = TemplateCatalog(generator.templates)
        model = DivQModel(db.require_index(), catalog, database=db)
        improved = regressed = 0
        for item in workload:
            ranked = rank_interpretations(generator.interpretations(item.query), model)
            ranked = ranked[:15]
            if len(ranked) < 6:
                continue
            keys = {
                id(i): frozenset(i.result_keys(db, limit=50)) for i, _p in ranked
            }
            rank_cover = set()
            for interp, _p in ranked[:5]:
                rank_cover |= keys[id(interp)]
            result = diversify(ranked, k=5, tradeoff=0.1)
            div_cover = set()
            for interp in result.selected:
                div_cover |= keys[id(interp)]
            if len(div_cover) > len(rank_cover):
                improved += 1
            elif len(div_cover) < len(rank_cover):
                regressed += 1
        assert improved >= regressed

    def test_metrics_pipeline(self, imdb_stack):
        db, generator, _model, workload = imdb_stack
        catalog = TemplateCatalog(generator.templates)
        model = DivQModel(db.require_index(), catalog, database=db)
        item = workload[0]
        ranked = rank_interpretations(generator.interpretations(item.query), model)[:10]
        entries = [
            (p, frozenset(i.result_keys(db, limit=50))) for i, p in ranked
        ]
        universe = subtopic_relevance(entries)
        for k in (1, 3, 5):
            assert 0.0 <= alpha_ndcg_w(entries, 0.5, k) <= 1.0
            assert 0.0 <= ws_recall(entries, k, universe) <= 1.0

    def test_similarity_reflects_shared_bindings(self, imdb_stack):
        db, generator, model, workload = imdb_stack
        item = workload[0]
        space = generator.interpretations(item.query)
        if len(space) >= 2:
            sim = jaccard_similarity(space[0], space[0])
            assert sim == 1.0


class TestBaselineComparison:
    def test_iqp_ranking_competitive_with_sqak(self, imdb_stack):
        """Median intended rank of IQP's ATF ranking should not be worse
        than SQAK's on the synthetic IMDB workload (Section 3.8.3)."""
        import statistics

        db, generator, model, workload = imdb_stack
        iqp = Ranker(generator, model)
        sqak = SqakRanker(generator, db.require_index())
        iqp_ranks, sqak_ranks = [], []
        for item in workload:
            r1 = iqp.rank_of(item.query, item.intended)
            r2 = sqak.rank_of(item.query, item.intended)
            if r1 is not None and r2 is not None:
                iqp_ranks.append(r1)
                sqak_ranks.append(r2)
        assert len(iqp_ranks) >= 5
        assert statistics.median(iqp_ranks) <= statistics.median(sqak_ranks)


class TestFreeQEndToEnd:
    def test_ontology_cost_not_worse_than_plain(self, freebase_instance):
        from repro.freeq.system import FreeQ
        from repro.datasets.freebase import freebase_workload

        db = freebase_instance.database
        generator = InterpretationGenerator(db, max_template_joins=2)
        model = ATFModel(db.require_index(), TemplateCatalog(generator.templates))
        freeq = FreeQ(generator, model, freebase_instance.ontology, stop_size=1)
        workload = freebase_workload(freebase_instance, n_queries=6)
        plain_total = onto_total = 0
        for item in workload:
            u1, u2 = SimulatedUser(item.intended), SimulatedUser(item.intended)
            plain = ConstructionSession(item.query, generator, model, stop_size=1).run(u1)
            onto = freeq.construct(item.query, u2)
            plain_total += plain.options_evaluated
            onto_total += onto.options_evaluated
            assert onto.success
        assert onto_total <= plain_total
