"""Unit tests for repro.core.interpretation (Defs. 3.5.3-3.5.7)."""

import pytest

from repro.core.interpretation import Interpretation, TableAtom, ValueAtom, atoms_subsume
from repro.core.keywords import Keyword, KeywordQuery
from repro.core.templates import QueryTemplate


@pytest.fixture
def actor_movie_template(mini_db):
    e1 = mini_db.schema.join_edges("actor", "acts")[0]
    e2 = mini_db.schema.join_edges("acts", "movie")[0]
    return QueryTemplate(path=("actor", "acts", "movie"), edges=(e1, e2))


@pytest.fixture
def hanks_2001():
    return KeywordQuery.from_terms(["hanks", "2001"])


def make_interp(query, template):
    k0, k1 = query.keywords
    a0 = ValueAtom(keyword=k0, table="actor", attribute="name")
    a1 = ValueAtom(keyword=k1, table="movie", attribute="year")
    return Interpretation.build(query, template, {a0: 0, a1: 2})


class TestAtoms:
    def test_value_atom_describe(self):
        a = ValueAtom(Keyword(0, "hanks"), "actor", "name")
        assert "hanks" in a.describe() and "actor.name" in a.describe()

    def test_table_atom_describe(self):
        a = TableAtom(Keyword(0, "actor"), "actor")
        assert "table" in a.describe()

    def test_atom_kinds(self):
        assert ValueAtom(Keyword(0, "x"), "t", "a").kind == "value"
        assert TableAtom(Keyword(0, "x"), "t").kind == "table"

    def test_atoms_subsume(self):
        a = ValueAtom(Keyword(0, "x"), "t", "a")
        b = ValueAtom(Keyword(1, "y"), "t", "a")
        assert atoms_subsume(frozenset([a]), frozenset([a, b]))
        assert not atoms_subsume(frozenset([a, b]), frozenset([a]))


class TestInterpretation:
    def test_complete(self, hanks_2001, actor_movie_template):
        interp = make_interp(hanks_2001, actor_movie_template)
        assert interp.is_complete
        assert interp.unbound_keywords == ()

    def test_partial(self, hanks_2001, actor_movie_template):
        k0 = hanks_2001.keywords[0]
        a0 = ValueAtom(keyword=k0, table="actor", attribute="name")
        partial = Interpretation.build(hanks_2001, actor_movie_template, {a0: 0})
        assert not partial.is_complete
        assert partial.unbound_keywords == (hanks_2001.keywords[1],)

    def test_subsumes(self, hanks_2001, actor_movie_template):
        full = make_interp(hanks_2001, actor_movie_template)
        k0 = hanks_2001.keywords[0]
        a0 = ValueAtom(keyword=k0, table="actor", attribute="name")
        partial = Interpretation.build(hanks_2001, actor_movie_template, {a0: 0})
        assert partial.subsumes(full)
        assert not full.subsumes(partial)

    def test_validate_ok(self, hanks_2001, actor_movie_template):
        make_interp(hanks_2001, actor_movie_template).validate()

    def test_validate_rejects_table_mismatch(self, hanks_2001, actor_movie_template):
        k0, k1 = hanks_2001.keywords
        a0 = ValueAtom(keyword=k0, table="actor", attribute="name")
        a1 = ValueAtom(keyword=k1, table="movie", attribute="year")
        bad = Interpretation.build(hanks_2001, actor_movie_template, {a0: 2, a1: 0})
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_rejects_duplicate_keyword(self, hanks_2001, actor_movie_template):
        k0, _k1 = hanks_2001.keywords
        a = ValueAtom(keyword=k0, table="actor", attribute="name")
        b = TableAtom(keyword=k0, table="actor")
        bad = Interpretation.build(hanks_2001, actor_movie_template, [(a, 0), (b, 0)])
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_rejects_minimality_violation(self, hanks_2001, actor_movie_template):
        """Both keywords on the actor endpoint leave movie as an empty leaf."""
        k0, k1 = hanks_2001.keywords
        a0 = ValueAtom(keyword=k0, table="actor", attribute="name")
        a1 = ValueAtom(keyword=k1, table="actor", attribute="name")
        bad = Interpretation.build(hanks_2001, actor_movie_template, {a0: 0, a1: 0})
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_rejects_bad_slot(self, hanks_2001, actor_movie_template):
        k0, k1 = hanks_2001.keywords
        a0 = ValueAtom(keyword=k0, table="actor", attribute="name")
        a1 = ValueAtom(keyword=k1, table="movie", attribute="year")
        bad = Interpretation.build(hanks_2001, actor_movie_template, {a0: 0, a1: 7})
        with pytest.raises(ValueError):
            bad.validate()

    def test_describe_mentions_scope(self, hanks_2001, actor_movie_template):
        interp = make_interp(hanks_2001, actor_movie_template)
        assert "[complete]" in interp.describe()


class TestExecutionBridge:
    def test_to_structured_query_groups_terms(self, mini_db, actor_movie_template):
        query = KeywordQuery.from_terms(["tom", "hanks", "2001"])
        k0, k1, k2 = query.keywords
        interp = Interpretation.build(
            query,
            actor_movie_template,
            {
                ValueAtom(k0, "actor", "name"): 0,
                ValueAtom(k1, "actor", "name"): 0,
                ValueAtom(k2, "movie", "year"): 2,
            },
        )
        sq = interp.to_structured_query()
        assert sq.selections[0] == (("name", ("tom", "hanks")),)
        assert sq.selections[2] == (("year", ("2001",)),)

    def test_execute(self, mini_db, actor_movie_template, hanks_2001):
        interp = make_interp(hanks_2001, actor_movie_template)
        rows = interp.execute(mini_db)
        # hanks actor in a 2001 movie: tom hanks + colin hanks in movie 2.
        assert len(rows) == 2

    def test_result_keys(self, mini_db, actor_movie_template, hanks_2001):
        interp = make_interp(hanks_2001, actor_movie_template)
        keys = interp.result_keys(mini_db)
        assert ("movie", 2) in keys
        assert ("actor", 1) in keys and ("actor", 2) in keys
