"""Unit tests for repro.core.keywords."""

from repro.core.keywords import Keyword, KeywordQuery


class TestParse:
    def test_parse_normalizes(self):
        q = KeywordQuery.parse("Hanks Terminal")
        assert q.terms == ("hanks", "terminal")
        assert q.text == "Hanks Terminal"

    def test_positions_assigned(self):
        q = KeywordQuery.parse("a b c")
        assert [k.position for k in q] == [0, 1, 2]

    def test_bag_semantics_duplicates(self):
        q = KeywordQuery.parse("la la")
        assert len(q) == 2
        assert q.keywords[0] != q.keywords[1]  # distinct positions

    def test_from_terms(self):
        q = KeywordQuery.from_terms(["tom", "hanks"])
        assert q.terms == ("tom", "hanks")
        assert str(q) == "tom hanks"

    def test_empty_query(self):
        q = KeywordQuery.parse("")
        assert len(q) == 0


class TestKeyword:
    def test_ordering_by_position(self):
        assert Keyword(0, "b") < Keyword(1, "a")

    def test_str(self):
        assert str(Keyword(0, "hanks")) == "hanks"

    def test_hashable(self):
        assert len({Keyword(0, "a"), Keyword(0, "a"), Keyword(1, "a")}) == 2

    def test_query_iteration(self):
        q = KeywordQuery.from_terms(["x", "y"])
        assert list(q) == [Keyword(0, "x"), Keyword(1, "y")]
