"""Unit tests for repro.core.labeled (labeled keyword search)."""

import pytest

from repro.core.generator import InterpretationGenerator
from repro.core.interpretation import TableAtom, ValueAtom
from repro.core.keywords import Keyword
from repro.core.labeled import Label, LabeledGenerator, parse_labeled


class TestParseLabeled:
    def test_plain_query_has_no_labels(self):
        lq = parse_labeled("hanks 2001")
        assert lq.labels == {}
        assert lq.query.terms == ("hanks", "2001")

    def test_table_label(self):
        lq = parse_labeled("actor:hanks 2001")
        assert lq.query.terms == ("hanks", "2001")
        assert lq.labels[0] == Label(table="actor")
        assert 1 not in lq.labels

    def test_attribute_label(self):
        lq = parse_labeled("movie.title:cool")
        assert lq.labels[0] == Label(table="movie", attribute="title")

    def test_positions_follow_token_expansion(self):
        lq = parse_labeled("actor:hanks movie:terminal")
        assert lq.labels[0].table == "actor"
        assert lq.labels[1].table == "movie"

    def test_multi_term_labeled_token(self):
        # A labeled token whose value tokenizes into two terms labels both.
        lq = parse_labeled("actor:tom-hanks")
        assert lq.query.terms == ("tom", "hanks")
        assert lq.labels[0].table == "actor"
        assert lq.labels[1].table == "actor"


class TestLabelAdmits:
    def test_table_label_admits_value_atoms_of_table(self):
        label = Label(table="actor")
        assert label.admits(ValueAtom(Keyword(0, "x"), "actor", "name"))
        assert not label.admits(ValueAtom(Keyword(0, "x"), "movie", "title"))

    def test_table_label_admits_table_atom(self):
        label = Label(table="actor")
        assert label.admits(TableAtom(Keyword(0, "actor"), "actor"))

    def test_attribute_label(self):
        label = Label(table="movie", attribute="title")
        assert label.admits(ValueAtom(Keyword(0, "x"), "movie", "title"))
        assert not label.admits(ValueAtom(Keyword(0, "x"), "movie", "year"))
        assert not label.admits(TableAtom(Keyword(0, "movie"), "movie"))

    def test_str(self):
        assert str(Label("movie", "title")) == "movie.title"
        assert str(Label("actor")) == "actor"


class TestLabeledGenerator:
    def test_labels_shrink_space(self, mini_db):
        base = InterpretationGenerator(mini_db, max_template_joins=2)
        plain = parse_labeled("hanks 2001")
        labeled = parse_labeled("actor:hanks 2001")
        plain_space = LabeledGenerator(base, plain).interpretations_for()
        labeled_space = LabeledGenerator(base, labeled).interpretations_for()
        assert 0 < len(labeled_space) <= len(plain_space)

    def test_labeled_atoms_respect_constraint(self, mini_db):
        base = InterpretationGenerator(mini_db, max_template_joins=2)
        labeled = parse_labeled("actor:hanks 2001")
        gen = LabeledGenerator(base, labeled)
        for interp in gen.interpretations_for():
            for atom in interp.atoms:
                if atom.keyword.position == 0:
                    assert atom.table == "actor"

    def test_attribute_label_pins_attribute(self, mini_db):
        base = InterpretationGenerator(mini_db, max_template_joins=2)
        labeled = parse_labeled("movie.title:hanks 2001")
        gen = LabeledGenerator(base, labeled)
        space = gen.interpretations_for()
        assert space
        for interp in space:
            for atom in interp.atoms:
                if atom.keyword.position == 0:
                    assert isinstance(atom, ValueAtom)
                    assert (atom.table, atom.attribute) == ("movie", "title")

    def test_impossible_label_empties_keyword(self, mini_db):
        base = InterpretationGenerator(mini_db, max_template_joins=2)
        labeled = parse_labeled("company:hanks")
        gen = LabeledGenerator(base, labeled)
        # "hanks" never occurs in a company table here: keyword excluded.
        assert gen.effective_keywords(labeled.query) == []
