"""The docs linter's coverage checks: flags and routes cannot go
undocumented.

``scripts/lint_docs.py`` already refuses docs that reference nonexistent
CLI commands, modules or paths; these tests pin the *reverse* direction —
every real CLI long option must appear in ``docs/cli.md``, every served
HTTP route in ``docs/http_api.md`` — including the negative cases: the
linter must fail on an intentionally undocumented flag or route (the
acceptance criterion), and the full ``main()`` must pass on the repo as
committed.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_linter():
    spec = importlib.util.spec_from_file_location(
        "lint_docs", REPO_ROOT / "scripts" / "lint_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


linter = _load_linter()


class TestFlagCoverage:
    def test_real_docs_cover_every_flag(self):
        cli_doc = (REPO_ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
        errors: list[str] = []
        linter.check_cli_flag_coverage(cli_doc, errors)
        assert errors == []

    def test_undocumented_flag_fails(self):
        """Negative: a docs/cli.md missing one real flag must be reported."""
        cli_doc = (REPO_ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
        stripped = cli_doc.replace("--http-port", "--SCRUBBED")
        errors: list[str] = []
        linter.check_cli_flag_coverage(stripped, errors)
        assert any("--http-port" in error for error in errors)

    def test_option_enumeration_sees_new_serve_flags(self):
        options = {
            option for _sub, option in linter.iter_cli_option_strings()
        }
        assert {"--http", "--http-port", "--tcp", "--queue-limit"} <= options
        assert "--help" not in options

    def test_empty_doc_reports_every_flag(self):
        errors: list[str] = []
        linter.check_cli_flag_coverage("", errors)
        assert len(errors) == len(set(linter.iter_cli_option_strings()))


class TestRouteCoverage:
    def test_real_docs_cover_every_route(self):
        http_doc = (REPO_ROOT / "docs" / "http_api.md").read_text(
            encoding="utf-8"
        )
        errors: list[str] = []
        linter.check_http_route_coverage(http_doc, errors)
        assert errors == []

    def test_undocumented_route_fails(self):
        """Negative: a docs/http_api.md without /healthz must be reported."""
        http_doc = (REPO_ROOT / "docs" / "http_api.md").read_text(
            encoding="utf-8"
        )
        stripped = http_doc.replace("/healthz", "/SCRUBBED")
        errors: list[str] = []
        linter.check_http_route_coverage(stripped, errors)
        assert any("/healthz" in error for error in errors)

    def test_empty_doc_reports_every_route(self):
        from repro.net.http import ROUTES

        errors: list[str] = []
        linter.check_http_route_coverage("", errors)
        assert len(errors) == len(ROUTES)


def test_full_linter_passes_on_the_repo(capsys):
    """The committed docs and code agree end to end (what CI runs)."""
    assert linter.main() == 0
    assert "OK" in capsys.readouterr().out


def test_full_linter_fails_on_an_invalid_cli_command(tmp_path, monkeypatch):
    """A doc referencing a flag the parser does not accept fails main()."""
    bad = tmp_path / "bad.md"
    bad.write_text(
        "```bash\npython -m repro.cli serve --no-such-flag\n```\n",
        encoding="utf-8",
    )
    monkeypatch.setattr(linter, "DOC_FILES", [bad])
    monkeypatch.setattr(linter, "REPO_ROOT", tmp_path)
    assert linter.main() == 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(linter.main())
