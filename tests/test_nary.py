"""Unit tests for repro.iqp.nary (binary <-> N-ary plan transformation)."""

import pytest

from repro.datasets.simulation import random_option_space
from repro.iqp.brute_force import brute_force_plan
from repro.iqp.greedy_plan import greedy_plan
from repro.iqp.nary import nary_expected_cost, to_binary, to_nary
from repro.iqp.plan import OptionSpace, expected_cost


@pytest.fixture
def chain_space() -> OptionSpace:
    """3 queries separated by 2 options, forcing a reject chain."""
    return OptionSpace.build(
        queries=["a", "b", "c"],
        probabilities=[0.5, 0.3, 0.2],
        options={"isA": {0}, "isB": {1}},
    )


class TestToNary:
    def test_reject_chain_becomes_one_round(self, chain_space):
        plan, _cost = greedy_plan(chain_space)
        nary = to_nary(plan)
        # The chain of two binary questions collapses into one round with
        # two real options plus the fallthrough.
        assert len(nary.options) >= 2

    def test_depths_preserved(self, chain_space):
        plan, _cost = greedy_plan(chain_space)
        nary = to_nary(plan)
        for i in range(3):
            assert nary.depth_of(i) == plan.depth_of(i)

    def test_cost_preserved(self, chain_space):
        plan, cost = greedy_plan(chain_space)
        nary = to_nary(plan)
        assert nary_expected_cost(nary, chain_space) == pytest.approx(cost)

    def test_leaf_passthrough(self):
        space = OptionSpace.build(["only"], [1.0], {})
        plan, _ = greedy_plan(space)
        nary = to_nary(plan)
        assert nary.is_leaf
        assert nary.depth_of(0) == 0


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(6))
    def test_binary_nary_binary_cost_invariant(self, seed):
        space = random_option_space(n_queries=10, n_options=5, seed=seed)
        plan, cost = greedy_plan(space)
        nary = to_nary(plan)
        back = to_binary(nary)
        assert expected_cost(back, space) == pytest.approx(cost)

    @pytest.mark.parametrize("seed", range(4))
    def test_nary_cost_equals_binary_cost(self, seed):
        space = random_option_space(n_queries=8, n_options=4, seed=seed + 50)
        plan, cost = brute_force_plan(space)
        nary = to_nary(plan)
        assert nary_expected_cost(nary, space) == pytest.approx(cost)

    @pytest.mark.parametrize("seed", range(4))
    def test_depths_match_for_all_queries(self, seed):
        space = random_option_space(n_queries=9, n_options=5, seed=seed + 100)
        plan, _ = greedy_plan(space)
        nary = to_nary(plan)
        for i in range(9):
            assert nary.depth_of(i) == plan.depth_of(i)
