"""Wire protocol: request parsing, response shapes, line framing.

Pure-protocol tests (no sockets): every malformed input maps to a
:class:`~repro.net.protocol.ProtocolError` with the right code, and
:class:`~repro.net.protocol.LineSplitter` frames byte streams correctly
under partial feeds, pipelined lines and the oversize guard — including
that an over-limit line never balloons the internal buffer.
"""

from __future__ import annotations

import json

import pytest

from repro.net import protocol
from repro.net.protocol import LineSplitter, ProtocolError, parse_request


class TestParseRequest:
    def test_minimal_request(self):
        request = parse_request(b'{"query": "hanks 2001"}')
        assert request.query == "hanks 2001"
        assert request.dataset is None
        assert request.k is None

    def test_full_request_and_round_trip(self):
        line = protocol.encode_request("london", dataset="imdb", k=3)
        assert line.endswith(b"\n")
        request = parse_request(line[:-1])
        assert request == protocol.Request(query="london", dataset="imdb", k=3)

    def test_query_is_stripped(self):
        assert parse_request(b'{"query": "  london  "}').query == "london"

    @pytest.mark.parametrize(
        "raw",
        [
            b"not json at all",
            b"\xff\xfe garbage",
            b'"just a string"',
            b"[1, 2, 3]",
            b"{}",
            b'{"query": 7}',
            b'{"query": ""}',
            b'{"query": "   "}',
            b'{"query": "x", "dataset": 9}',
            b'{"query": "x", "k": 0}',
            b'{"query": "x", "k": -1}',
            b'{"query": "x", "k": true}',
            b'{"query": "x", "k": "5"}',
        ],
    )
    def test_malformed_requests(self, raw):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(raw)
        assert excinfo.value.code == protocol.ERR_MALFORMED

    def test_error_carries_detail(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b"{}")
        assert "query" in excinfo.value.detail


class TestResponses:
    def test_error_response_shape(self):
        line = protocol.error_response(protocol.ERR_OVERLOADED, "queue full")
        payload = json.loads(line)
        assert payload == {
            "ok": False,
            "v": protocol.PROTOCOL_VERSION,
            "error": protocol.ERR_OVERLOADED,
            "detail": "queue full",
        }

    def test_encode_line_is_one_line(self):
        line = protocol.encode_line({"a": 1})
        assert line.count(b"\n") == 1 and line.endswith(b"\n")


class TestLineSplitter:
    def test_single_line(self):
        assert LineSplitter().feed(b'{"q":1}\n') == [b'{"q":1}']

    def test_pipelined_lines_in_one_feed(self):
        assert LineSplitter().feed(b"a\nb\nc\n") == [b"a", b"b", b"c"]

    def test_partial_feeds_reassemble(self):
        splitter = LineSplitter()
        assert splitter.feed(b'{"query": "han') == []
        assert splitter.feed(b'ks"}') == []
        assert splitter.feed(b"\nnext") == [b'{"query": "hanks"}']
        assert splitter.feed(b"\n") == [b"next"]

    def test_empty_lines_pass_through(self):
        # The listener skips blanks; the splitter just frames them.
        assert LineSplitter().feed(b"\n\nx\n") == [b"", b"", b"x"]

    def test_oversized_line_in_one_feed(self):
        splitter = LineSplitter(limit=8)
        assert splitter.feed(b"123456789\nok\n") == [protocol.OVERSIZED, b"ok"]

    def test_oversized_line_streamed_keeps_buffer_bounded(self):
        splitter = LineSplitter(limit=16)
        for _ in range(100):
            assert splitter.feed(b"x" * 64) == []
            assert len(splitter._buffer) <= 16
        # The terminating newline surfaces the marker once and resyncs.
        assert splitter.feed(b"tail\nafter\n") == [protocol.OVERSIZED, b"after"]

    def test_exactly_at_the_limit_is_fine(self):
        splitter = LineSplitter(limit=4)
        assert splitter.feed(b"abcd\n") == [b"abcd"]
        assert splitter.feed(b"abcde\n") == [protocol.OVERSIZED]

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            LineSplitter(limit=0)
