"""Unit tests for repro.core.options (QCO kinds)."""

import pytest

from repro.core.interpretation import TableAtom, ValueAtom
from repro.core.keywords import Keyword
from repro.core.options import AtomSetOption, ConceptOption
from repro.user.oracle import IntendedInterpretation, table_spec, value_spec

K0 = Keyword(0, "hanks")
K1 = Keyword(1, "2001")
A_ACTOR = ValueAtom(K0, "actor", "name")
A_DIRECTOR = ValueAtom(K0, "director", "name")
A_TITLE = ValueAtom(K0, "movie", "title")
A_YEAR = ValueAtom(K1, "movie", "year")

INTENDED = IntendedInterpretation(
    bindings={0: value_spec("actor", "name"), 1: value_spec("movie", "year")}
)


class TestAtomSetOption:
    def test_matches_subset(self):
        opt = AtomSetOption(frozenset([A_ACTOR]))
        assert opt.matches(frozenset([A_ACTOR, A_YEAR]))
        assert not opt.matches(frozenset([A_TITLE, A_YEAR]))

    def test_multi_atom_option(self):
        opt = AtomSetOption(frozenset([A_ACTOR, A_YEAR]))
        assert opt.matches(frozenset([A_ACTOR, A_YEAR]))
        assert not opt.matches(frozenset([A_ACTOR]))

    def test_is_correct(self):
        assert AtomSetOption(frozenset([A_ACTOR])).is_correct(INTENDED)
        assert not AtomSetOption(frozenset([A_TITLE])).is_correct(INTENDED)

    def test_describe(self):
        assert "actor.name" in AtomSetOption(frozenset([A_ACTOR])).describe()


class TestConceptOption:
    def test_matches_any_member(self):
        opt = ConceptOption(
            keyword=K0, concept="Person", atoms=frozenset([A_ACTOR, A_DIRECTOR])
        )
        assert opt.matches(frozenset([A_ACTOR, A_YEAR]))
        assert opt.matches(frozenset([A_DIRECTOR, A_YEAR]))
        assert not opt.matches(frozenset([A_TITLE, A_YEAR]))

    def test_is_correct_when_any_atom_correct(self):
        opt = ConceptOption(
            keyword=K0, concept="Person", atoms=frozenset([A_ACTOR, A_DIRECTOR])
        )
        assert opt.is_correct(INTENDED)

    def test_is_incorrect_when_no_atom_correct(self):
        opt = ConceptOption(keyword=K0, concept="Work", atoms=frozenset([A_TITLE]))
        assert not opt.is_correct(INTENDED)

    def test_rejects_mixed_keywords(self):
        with pytest.raises(ValueError):
            ConceptOption(keyword=K0, concept="X", atoms=frozenset([A_ACTOR, A_YEAR]))

    def test_describe_names_concept(self):
        opt = ConceptOption(keyword=K0, concept="Person", atoms=frozenset([A_ACTOR]))
        assert "Person" in opt.describe()
        assert "hanks" in opt.describe()


class TestOracleSpecs:
    def test_table_spec_matching(self):
        intended = IntendedInterpretation(bindings={0: table_spec("actor")})
        atom = TableAtom(K0, "actor")
        assert intended.matches_atom(atom)
        assert not intended.matches_atom(TableAtom(K0, "movie"))

    def test_unbound_position_never_matches(self):
        intended = IntendedInterpretation(bindings={5: value_spec("actor", "name")})
        assert not intended.matches_atom(A_ACTOR)
