"""Unit tests for repro.baselines.pagerank and repro.cli."""

import pytest

from repro.baselines.pagerank import ImportanceScorer, TupleImportance
from repro.cli import build_parser, main
from repro.db.datagraph import DataGraph


class TestTupleImportance:
    def test_scores_cover_all_tuples(self, mini_db):
        importance = TupleImportance.compute(DataGraph(mini_db))
        assert len(importance.scores) == mini_db.total_tuples()

    def test_scores_sum_to_one(self, mini_db):
        importance = TupleImportance.compute(DataGraph(mini_db))
        assert sum(importance.scores.values()) == pytest.approx(1.0)

    def test_connected_tuple_more_important(self, mini_db):
        """tom hanks (2 movies) outranks jack london (1 movie)."""
        importance = TupleImportance.compute(DataGraph(mini_db))
        assert importance.of(("actor", 1)) > importance.of(("actor", 3))

    def test_top(self, mini_db):
        importance = TupleImportance.compute(DataGraph(mini_db))
        top = importance.top(3)
        assert len(top) == 3
        scores = [s for _uid, s in top]
        assert scores == sorted(scores, reverse=True)

    def test_unknown_uid_zero(self, mini_db):
        importance = TupleImportance.compute(DataGraph(mini_db))
        assert importance.of(("ghost", 99)) == 0.0


class TestImportanceScorer:
    def test_rank_descending(self, mini_db):
        importance = TupleImportance.compute(DataGraph(mini_db))
        scorer = ImportanceScorer(importance)
        e1 = mini_db.schema.join_edges("actor", "acts")[0]
        e2 = mini_db.schema.join_edges("acts", "movie")[0]
        results = mini_db.execute_path(["actor", "acts", "movie"], [e1, e2])
        ranked = scorer.rank(results)
        scores = [s for s, _r in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_empty_result_zero(self, mini_db):
        importance = TupleImportance.compute(DataGraph(mini_db))
        assert ImportanceScorer(importance).score([]) == 0.0


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["search", "hanks 2001", "--dataset", "imdb", "--k", "3"])
        assert args.query == "hanks 2001"
        assert args.k == 3

    def test_search_runs(self, capsys):
        code = main(["search", "hanks", "--dataset", "imdb", "--k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "interpretations" in out

    def test_search_no_hits(self, capsys):
        code = main(["search", "zzzzzz", "--dataset", "imdb"])
        assert code == 1

    def test_construct_scripted(self, capsys):
        code = main(
            ["construct", "hanks 2001", "--dataset", "imdb", "--answers", "n", "y"]
        )
        assert code in (0, 1)
        out = capsys.readouterr().out
        assert "[y/n]" in out

    def test_diversify_runs(self, capsys):
        code = main(["diversify", "london", "--dataset", "imdb", "--k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "diversified" in out

    def test_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["search", "hanks", "--dataset", "nope"])
