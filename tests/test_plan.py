"""Unit tests for repro.iqp.plan (QCPs over abstract option spaces)."""

import pytest

from repro.iqp.plan import (
    OptionSpace,
    PlanNode,
    expected_cost,
    make_scan_node,
    ranked_list_cost,
    splitting_options,
)


@pytest.fixture
def four_query_space() -> OptionSpace:
    """4 queries; opt_a = {0,1}, opt_b = {0,2}."""
    return OptionSpace.build(
        queries=["q0", "q1", "q2", "q3"],
        probabilities=[0.4, 0.3, 0.2, 0.1],
        options={"a": {0, 1}, "b": {0, 2}},
    )


class TestOptionSpace:
    def test_probabilities_normalized(self):
        space = OptionSpace.build(["x", "y"], [2.0, 2.0], {})
        assert space.probabilities == (0.5, 0.5)

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            OptionSpace.build(["x"], [0.5, 0.5], {})

    def test_all_indices(self, four_query_space):
        assert four_query_space.all_indices() == frozenset({0, 1, 2, 3})

    def test_conditional_renormalizes(self, four_query_space):
        cond = four_query_space.conditional(frozenset({0, 1}))
        assert sum(cond) == pytest.approx(1.0)
        assert cond[0] == pytest.approx(0.4 / 0.7)

    def test_mass(self, four_query_space):
        assert four_query_space.mass(frozenset({0, 1})) == pytest.approx(0.7)


class TestRankedListCost:
    def test_single_item_free(self):
        assert ranked_list_cost([1.0]) == 0.0

    def test_empty(self):
        assert ranked_list_cost([]) == 0.0

    def test_two_items(self):
        # Best-first scan: top item costs 1; second is implied after the
        # first rejection (cost 1).
        assert ranked_list_cost([0.5, 0.5]) == pytest.approx(1.0)

    def test_skewed_cheaper_than_uniform(self):
        assert ranked_list_cost([0.9, 0.05, 0.05]) < ranked_list_cost([1 / 3] * 3)

    def test_uses_descending_order(self):
        assert ranked_list_cost([0.1, 0.9]) == ranked_list_cost([0.9, 0.1])


class TestSplittingOptions:
    def test_finds_splitting(self, four_query_space):
        opts = splitting_options(four_query_space, four_query_space.all_indices())
        names = [o for o, _i, _o2 in opts]
        assert set(names) == {"a", "b"}

    def test_non_splitting_excluded(self, four_query_space):
        opts = splitting_options(four_query_space, frozenset({0, 1}))
        names = [o for o, _i, _o2 in opts]
        assert "a" not in names  # subsumes the whole subset
        assert "b" in names

    def test_sides_partition_subset(self, four_query_space):
        subset = four_query_space.all_indices()
        for _o, inside, outside in splitting_options(four_query_space, subset):
            assert inside | outside == subset
            assert not inside & outside


class TestPlanNodesAndCost:
    def test_leaf_depth(self):
        leaf = PlanNode(subset=frozenset({1}), query_index=1)
        assert leaf.depth_of(1) == 0
        with pytest.raises(KeyError):
            leaf.depth_of(2)

    def test_internal_depth(self, four_query_space):
        accept = PlanNode(subset=frozenset({0, 1}), scan=True, scan_order=(0, 1))
        reject = PlanNode(subset=frozenset({2, 3}), scan=True, scan_order=(2, 3))
        root = PlanNode(
            subset=four_query_space.all_indices(), option="a", accept=accept, reject=reject
        )
        # q0: root question (1) + scan position 1 -> capped at n-1=1.
        assert root.depth_of(0) == 2
        assert root.depth_of(2) == 2

    def test_expected_cost_of_scan_equals_ranked_list(self, four_query_space):
        node = make_scan_node(four_query_space, four_query_space.all_indices())
        assert expected_cost(node, four_query_space) == pytest.approx(
            ranked_list_cost(list(four_query_space.probabilities))
        )

    def test_scan_node_probability_order(self, four_query_space):
        node = make_scan_node(four_query_space, four_query_space.all_indices())
        assert node.scan_order == (0, 1, 2, 3)

    def test_expected_cost_single_leaf(self):
        space = OptionSpace.build(["only"], [1.0], {})
        leaf = PlanNode(subset=frozenset({0}), query_index=0)
        assert expected_cost(leaf, space) == 0.0
