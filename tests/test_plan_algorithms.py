"""Unit tests for repro.iqp.brute_force and repro.iqp.greedy_plan."""

import pytest

from repro.datasets.simulation import random_option_space
from repro.iqp.brute_force import brute_force_plan
from repro.iqp.greedy_plan import greedy_plan
from repro.iqp.plan import OptionSpace, expected_cost


@pytest.fixture
def binary_space() -> OptionSpace:
    """4 equally likely queries, 2 orthogonal bisecting options: the optimal
    plan is a balanced depth-2 tree with cost exactly 2."""
    return OptionSpace.build(
        queries=["q0", "q1", "q2", "q3"],
        probabilities=[0.25] * 4,
        options={"left": {0, 1}, "odd": {0, 2}},
    )


class TestBruteForce:
    def test_balanced_tree_cost(self, binary_space):
        plan, cost = brute_force_plan(binary_space)
        assert cost == pytest.approx(2.0)

    def test_plan_reaches_every_query(self, binary_space):
        plan, _cost = brute_force_plan(binary_space)
        for i in range(4):
            assert plan.depth_of(i) == 2

    def test_expected_cost_consistent(self, binary_space):
        plan, cost = brute_force_plan(binary_space)
        assert expected_cost(plan, binary_space) == pytest.approx(cost)

    def test_single_query_zero_cost(self):
        space = OptionSpace.build(["q"], [1.0], {})
        _plan, cost = brute_force_plan(space)
        assert cost == 0.0

    def test_no_options_scan_fallback(self):
        space = OptionSpace.build(["a", "b", "c"], [0.5, 0.3, 0.2], {})
        plan, cost = brute_force_plan(space)
        assert plan.scan
        assert cost > 0

    def test_skewed_probabilities_prefer_isolating_heavy(self):
        space = OptionSpace.build(
            queries=["hot", "q1", "q2", "q3"],
            probabilities=[0.85, 0.05, 0.05, 0.05],
            options={"isolate": {0}, "halve": {0, 1}},
        )
        plan, _cost = brute_force_plan(space)
        # The heavy query should be resolved in a single question.
        assert plan.depth_of(0) == 1


class TestGreedy:
    def test_matches_optimum_on_orthogonal_splits(self, binary_space):
        _bp, b_cost = brute_force_plan(binary_space)
        _gp, g_cost = greedy_plan(binary_space)
        assert g_cost == pytest.approx(b_cost)

    def test_never_beats_brute_force(self):
        for seed in range(8):
            space = random_option_space(n_queries=10, n_options=5, seed=seed)
            _bp, b_cost = brute_force_plan(space)
            _gp, g_cost = greedy_plan(space)
            assert g_cost >= b_cost - 1e-9

    def test_near_optimal(self):
        """Table 3.4's claim: greedy within a few percent of optimal."""
        gaps = []
        for seed in range(10):
            space = random_option_space(n_queries=12, n_options=6, seed=seed)
            _bp, b_cost = brute_force_plan(space)
            _gp, g_cost = greedy_plan(space)
            gaps.append((g_cost - b_cost) / b_cost if b_cost else 0.0)
        assert sum(gaps) / len(gaps) < 0.10

    def test_plan_resolves_all_queries(self):
        space = random_option_space(n_queries=10, n_options=5, seed=3)
        plan, _cost = greedy_plan(space)
        for i in range(10):
            assert plan.depth_of(i) >= 0

    def test_single_query(self):
        space = OptionSpace.build(["q"], [1.0], {})
        _plan, cost = greedy_plan(space)
        assert cost == 0.0
