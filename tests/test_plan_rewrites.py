"""Cost-based plan rewrites: parity first, then the improved choices.

Every physical rewrite the cost model drives — scatter-position choice,
join introduction order, batch membership/eviction — must return rows
byte-identical to the unrewritten plan (the querytorque-style validation
loop).  The suites here pin that parity at three levels (raw plan, backend
``execute_path``, full engine over imdb + lyrics on all three backends),
then pin the *choices*: the skewed-fixture scatter regression PR 5 flagged,
the greedy join reorder, and cost-aware batch eviction.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.db.backends import create_backend
from repro.db.backends import sql as sqlc
from repro.db.backends.sql import PathPlan, plan_batch, plan_path, reorder_joins
from repro.engine.context import EngineConfig
from repro.engine.engine import QueryEngine
from tests.conftest import build_mini_db, mini_schema

QUERIES = ["hanks 2001", "london", "hanks", "2001", "stone hill", "summer"]

CHAIN = ("actor", "acts", "movie")


def _chain_edges(schema):
    by_attr = {fk.source_attr: fk for fk in schema.foreign_keys}
    return [by_attr["actor_id"], by_attr["movie_id"]]


def _keys(networks):
    """The comparable identity of executed networks (byte-identical rows)."""
    return [tuple(t.key for t in network) for network in networks]


class FakeEstimator:
    """Deterministic estimator for planner unit tests.

    ``costs`` maps a plan's total inline-key count to its estimated rows;
    ``cards`` (when set) is returned verbatim from ``slot_cardinalities``.
    Missing entries behave like catalog gaps (``None``).
    """

    def __init__(self, costs=None, cards=None):
        self.costs = costs or {}
        self.cards = cards

    def estimate(self, plan: PathPlan):
        inline_keys = sum(len(keys) for _pos, keys in plan.inline_filters)
        return self.costs.get(inline_keys)

    def slot_cardinalities(self, plan: PathPlan):
        return self.cards


class TestReorderJoins:
    def test_smallest_slot_anchors_the_chain(self):
        plan = plan_path(["a", "b", "c"], [object(), object()], {}, None)
        plan = reorder_joins(plan, FakeEstimator(cards=[5.0, 1.0, 3.0]))
        assert plan.join_order == (1, 2, 0)

    def test_default_order_stays_unannotated(self):
        plan = plan_path(["a", "b", "c"], [object(), object()], {}, None)
        assert reorder_joins(plan, FakeEstimator(cards=[1.0, 2.0, 3.0])).join_order is None

    def test_estimator_gap_keeps_the_plan(self):
        plan = plan_path(["a", "b"], [object()], {}, None)
        assert reorder_joins(plan, FakeEstimator(cards=None)) is plan
        assert reorder_joins(plan, None) is plan

    def test_single_table_plans_never_reorder(self):
        plan = plan_path(["a"], [], {}, None)
        assert reorder_joins(plan, FakeEstimator(cards=[1.0])) is plan

    def test_ties_break_toward_path_order(self):
        plan = plan_path(["a", "b", "c"], [object(), object()], {}, None)
        assert reorder_joins(plan, FakeEstimator(cards=[2.0, 2.0, 2.0])).join_order is None


class TestJoinOrderCompilation:
    """``join_order`` permutes FROM/JOIN introduction, never the rows."""

    @pytest.fixture()
    def db(self, tmp_path):
        db = build_mini_db("sqlite", db_path=tmp_path / "mini.sqlite")
        yield db
        db.close()

    def _plan(self, db, selections=None):
        plan = db.plan_path_spec(list(CHAIN), _chain_edges(db.schema), selections)
        assert plan is not None
        return plan

    def test_every_connected_order_returns_identical_rows(self, db):
        plan = self._plan(db, {2: [("title", ("hanks",))]})
        baseline = _keys(db._run_plan(plan))
        assert baseline  # the parity assertion must witness real rows
        for order in [(0, 1, 2), (1, 0, 2), (1, 2, 0), (2, 1, 0)]:
            rows = _keys(db._run_plan(replace(plan, join_order=order)))
            assert rows == baseline, f"join order {order} changed the rows"

    def test_disconnected_order_is_rejected(self, db):
        plan = self._plan(db)
        with pytest.raises(ValueError, match="not connected"):
            db.compiler.compile_path(replace(plan, join_order=(0, 2, 1)))

    def test_non_permutation_is_rejected(self, db):
        plan = self._plan(db)
        with pytest.raises(ValueError, match="not a permutation"):
            db.compiler.compile_path(replace(plan, join_order=(0, 0, 1)))

    def test_prepare_plan_reorders_around_the_filtered_slot(self, db):
        plan = self._plan(db, {2: [("title", ("hanks",))]})
        prepared = db._prepare_plan(plan)
        # cards = [3 actors, 4 acts, 1 selected movie]: anchor at the movie.
        assert prepared.join_order == (2, 1, 0)
        assert prepared.estimated_rows is not None
        assert _keys(db._run_plan(prepared)) == _keys(db._run_plan(plan))

    def test_cost_planning_off_prepares_nothing(self, db):
        plan = self._plan(db, {2: [("title", ("hanks",))]})
        db.cost_planning = False
        prepared = db._prepare_plan(plan)
        assert prepared.join_order is None
        assert prepared.estimated_rows is None
        assert prepared.scatter_position == plan.scatter_position


class TestScatterPositionChoice:
    """The PR 5-flagged regression: selection-key counts beat raw row counts."""

    @pytest.fixture()
    def db(self, tmp_path):
        db = build_mini_db("sqlite-sharded", db_path=tmp_path / "mini.sqlite")
        yield db
        db.close()

    def _skewed_plan(self, db):
        # movie (3 rows) is the raw-count minimum, but the selection on acts
        # resolves to a single key — the truly selective slot.
        by_attr = {fk.source_attr: fk for fk in db.schema.foreign_keys}
        plan = db.plan_path_spec(
            ["movie", "acts"],
            [by_attr["movie_id"]],
            {1: [("role", ("captain",))]},
        )
        assert plan is not None
        assert plan.key_filter_map() == {1: frozenset({1})}
        return plan

    def test_cost_model_picks_the_filtered_slot(self, db):
        assert db._prepare_plan(self._skewed_plan(db)).scatter_position == 1

    def test_raw_row_counts_pick_the_smaller_table(self, db):
        db.cost_planning = False
        assert db._prepare_plan(self._skewed_plan(db)).scatter_position == 0

    def test_selection_keys_win_even_without_a_catalog(self, db):
        # The cheap fallback: full statistics unavailable, but a slot whose
        # selection resolved to keys still costs len(keys), not row counts.
        db._statistics = None
        db._cardinality_estimator = None
        assert db._prepare_plan(self._skewed_plan(db)).scatter_position == 1

    def test_both_scatter_choices_return_identical_rows(self, db):
        plan = self._skewed_plan(db)
        rows = _keys(db._run_plan(replace(plan, scatter_position=1)))
        assert rows == _keys(db._run_plan(plan))
        assert rows  # must witness real rows

    def test_scatter_label_names_the_cost_choice(self, db):
        prepared = db._prepare_plan(self._skewed_plan(db))
        label = db._scatter_slot_label(prepared)
        assert label == "t1 (acts, 1 selection keys) [cost-chosen over default t0]"


class TestCostAwareBatchEviction:
    """Budget overflow evicts the most expensive members, not spec order."""

    def _resolved(self):
        # Three single-table specs with 5, 3 and 4 inline keys (total 12).
        return [
            (0, ["a"], [], {0: set(range(5))}),
            (1, ["b"], [], {0: set(range(3))}),
            (2, ["c"], [], {0: set(range(4))}),
        ]

    def test_without_estimator_largest_key_count_goes_first(self):
        batch = plan_batch(self._resolved(), None, inline_budget=8)
        assert [index for index, _plan in batch.members] == [1, 2]
        assert [index for index, _plan, _r in batch.fallbacks] == [0]
        _idx, _plan, reason = batch.fallbacks[0]
        assert "parameter budget exhausted" in reason
        assert "5 inline keys" in reason

    def test_estimator_flips_the_eviction_order(self):
        # The 3-key spec is the most expensive by estimated rows, so it is
        # evicted first even though it binds the fewest parameters; the
        # 5-key spec follows to get under budget.
        estimator = FakeEstimator(costs={5: 1.0, 3: 100.0, 4: 1.0})
        batch = plan_batch(self._resolved(), None, inline_budget=8, estimator=estimator)
        assert [index for index, _plan in batch.members] == [2]
        evicted = {index: reason for index, _plan, reason in batch.fallbacks}
        assert set(evicted) == {0, 1}
        assert "~100.0 estimated rows" in evicted[1]
        assert "~1.0 estimated rows" in evicted[0]
        assert all("parameter budget exhausted" in r for r in evicted.values())

    def test_keyless_members_are_never_evicted(self):
        resolved = self._resolved() + [(3, ["d"], [], {})]
        estimator = FakeEstimator(costs={5: 1.0, 3: 1.0, 4: 1.0, 0: 10_000.0})
        batch = plan_batch(resolved, None, inline_budget=8, estimator=estimator)
        assert 3 in [index for index, _plan in batch.members]

    def test_under_budget_nothing_is_evicted(self):
        estimator = FakeEstimator(costs={5: 100.0, 3: 100.0, 4: 100.0})
        batch = plan_batch(self._resolved(), None, estimator=estimator)
        assert [index for index, _plan in batch.members] == [0, 1, 2]
        assert not batch.fallbacks

    def test_oversized_key_set_reason_is_preserved(self):
        resolved = [(0, ["a"], [], {0: set(range(7))})]
        batch = plan_batch(resolved, None, max_inline_keys=5)
        _idx, _plan, reason = batch.fallbacks[0]
        assert "exceeds the 5-key inline cap" in reason


class TestBackendParity:
    """``execute_path`` rows are identical with cost planning on and off."""

    SPECS = [
        (["actor"], 0, [("name", ("hanks",))]),
        (["actor", "acts"], 0, [("name", ("london",))]),
        (["actor", "acts", "movie"], 2, [("title", ("hanks",))]),
        (["movie", "acts"], 1, [("role", ("captain",))]),
    ]

    @pytest.mark.parametrize("backend_name", ["memory", "sqlite", "sqlite-sharded"])
    def test_execute_path_parity(self, backend_name, tmp_path):
        path_arg = None if backend_name == "memory" else tmp_path / "mini.sqlite"
        db = build_mini_db(backend_name, db_path=path_arg)
        edge_for = {
            frozenset((fk.source, fk.target)): fk for fk in db.schema.foreign_keys
        }
        witnessed = 0
        for path, position, selections in self.SPECS:
            edges = [edge_for[frozenset(pair)] for pair in zip(path, path[1:])]
            spec_selections = {position: selections}
            with_cost = _keys(db.execute_path(path, edges, spec_selections))
            db.cost_planning = False
            without = _keys(db.execute_path(path, edges, spec_selections))
            db.cost_planning = True
            assert with_cost == without, f"{path} rows diverged under cost planning"
            witnessed += len(with_cost)
        assert witnessed  # the suite must compare real rows, not empties
        db.close()


@pytest.mark.parametrize("dataset", ["imdb", "lyrics"])
@pytest.mark.parametrize("backend_name", ["memory", "sqlite", "sqlite-sharded"])
class TestEnginePlanParity:
    """Full-pipeline rows are byte-identical with cost planning on and off."""

    def test_results_identical_across_the_workload(
        self, dataset, backend_name, tmp_path
    ):
        path_arg = None if backend_name == "memory" else tmp_path / "parity.sqlite"
        cost = QueryEngine.for_dataset(
            dataset,
            backend=backend_name,
            db_path=path_arg,
            config=EngineConfig(cache_results=False),
        )
        legacy = QueryEngine(
            cost.backend,
            config=EngineConfig(cache_results=False, cost_based_planning=False),
        )
        assert cost.backend.cost_planning is False  # legacy engine gated it
        witnessed = 0
        for query_text in QUERIES:
            cost.backend.cost_planning = True
            expected = [r.row_uids() for r in cost.search(query_text)]
            cost.backend.cost_planning = False
            actual = [r.row_uids() for r in legacy.search(query_text)]
            assert actual == expected, f"{query_text!r} rows diverged"
            witnessed += len(expected)
        assert witnessed
        cost.backend.close()


class TestExplainSurface:
    def test_explain_shows_estimates_and_plan_choices(self, tmp_path):
        engine = QueryEngine.for_dataset(
            "imdb",
            backend="sqlite-sharded",
            db_path=tmp_path / "explain.sqlite",
            config=EngineConfig(cache_results=False),
        )
        context = engine.run("london", explain=True)
        lines = "\n".join(context.explain_lines())
        assert "estimated vs actual rows:" in lines
        assert " est/" in lines  # at least one estimate paired with an actual
        assert context.executor_statistics.estimated_rows
        engine.backend.close()

    def test_cost_planning_off_reports_no_plan_choices(self, tmp_path):
        engine = QueryEngine.for_dataset(
            "imdb",
            backend="sqlite-sharded",
            db_path=tmp_path / "legacy.sqlite",
            config=EngineConfig(cache_results=False, cost_based_planning=False),
        )
        context = engine.run("london", explain=True)
        lines = "\n".join(context.explain_lines())
        assert "estimated vs actual rows:" not in lines
        assert "plan #" not in lines
        assert "[cost-chosen" not in lines
        engine.backend.close()
