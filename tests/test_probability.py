"""Unit tests for repro.core.probability (Eqs. 3.5-3.8, 4.2)."""

import pytest

from repro.core.generator import InterpretationGenerator
from repro.core.interpretation import TableAtom, ValueAtom
from repro.core.keywords import Keyword, KeywordQuery
from repro.core.probability import (
    ATFModel,
    DivQModel,
    TemplateCatalog,
    UniformModel,
    entropy,
    normalize,
    rank_interpretations,
)


class TestNormalize:
    def test_sums_to_one(self):
        assert sum(normalize([1.0, 2.0, 3.0])) == pytest.approx(1.0)

    def test_preserves_ratios(self):
        p = normalize([1.0, 3.0])
        assert p[1] == pytest.approx(3 * p[0])

    def test_zero_weights_uniform(self):
        assert normalize([0.0, 0.0]) == [0.5, 0.5]

    def test_empty(self):
        assert normalize([]) == []


class TestEntropy:
    def test_uniform_maximal(self):
        assert entropy([0.5, 0.5]) == pytest.approx(1.0)

    def test_certain_zero(self):
        assert entropy([1.0, 0.0]) == 0.0

    def test_monotone_in_spread(self):
        assert entropy([0.5, 0.5]) > entropy([0.9, 0.1])


class TestTemplateCatalog:
    def test_uniform_prior_without_log(self, mini_generator):
        catalog = TemplateCatalog(mini_generator.templates)
        t = mini_generator.templates[0]
        assert catalog.prior(t) == pytest.approx(1.0 / len(mini_generator.templates))

    def test_log_prior_eq_3_7(self, mini_generator):
        catalog = TemplateCatalog(mini_generator.templates, alpha=1.0)
        t0, t1 = mini_generator.templates[0], mini_generator.templates[1]
        catalog.record_usage(t0, 9)
        n_templates = len(mini_generator.templates)
        assert catalog.prior(t0) == pytest.approx((9 + 1) / (9 + n_templates))
        assert catalog.prior(t1) == pytest.approx(1 / (9 + n_templates))

    def test_recorded_template_outranks_unrecorded(self, mini_generator):
        catalog = TemplateCatalog(mini_generator.templates)
        t0, t1 = mini_generator.templates[0], mini_generator.templates[1]
        catalog.record_usage(t0, 5)
        assert catalog.prior(t0) > catalog.prior(t1)

    def test_record_log_by_identifier(self, mini_generator):
        catalog = TemplateCatalog(mini_generator.templates)
        t0 = mini_generator.templates[0]
        catalog.record_log([t0.identifier, t0.identifier])
        assert catalog.frequency(t0) == pytest.approx(1.0)

    def test_frequency_zero_without_log(self, mini_generator):
        catalog = TemplateCatalog(mini_generator.templates)
        assert catalog.frequency(mini_generator.templates[0]) == 0.0


class TestATFModel:
    def test_value_atom_weight_is_atf(self, mini_db, mini_generator, mini_model):
        atom = ValueAtom(Keyword(0, "hanks"), "actor", "name")
        t = mini_generator.templates[0]
        idx = mini_db.require_index()
        assert mini_model.atom_weight(atom, t) == pytest.approx(
            idx.atf("hanks", "actor", "name")
        )

    def test_table_atom_weight(self, mini_generator, mini_model):
        atom = TableAtom(Keyword(0, "actor"), "actor")
        assert mini_model.atom_weight(atom, mini_generator.templates[0]) == 0.5

    def test_interpretation_weight_is_product(self, mini_db, mini_generator, mini_model):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        interp = mini_generator.interpretations(q)[0]
        expected = mini_model.template_prior(interp.template)
        for atom in interp.atoms:
            expected *= mini_model.atom_weight(atom, interp.template)
        assert mini_model.interpretation_weight(interp) == pytest.approx(expected)

    def test_typical_interpretation_preferred(self, mini_db, mini_generator, mini_model):
        """ATF prefers "hanks" as an actor name (2 of 6 tokens) over a movie
        title word (1 of 6) — the §3.8.3 typicality preference."""
        idx = mini_db.require_index()
        assert idx.atf("hanks", "actor", "name") > idx.atf("hanks", "movie", "title")


class TestRankInterpretations:
    def test_best_first_order(self, mini_generator, mini_model):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        ranked = rank_interpretations(mini_generator.interpretations(q), mini_model)
        probs = [p for _i, p in ranked]
        assert probs == sorted(probs, reverse=True)

    def test_probabilities_normalized(self, mini_generator, mini_model):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        ranked = rank_interpretations(mini_generator.interpretations(q), mini_model)
        assert sum(p for _i, p in ranked) == pytest.approx(1.0)

    def test_uniform_model_ties_broken_deterministically(self, mini_generator):
        q = KeywordQuery.from_terms(["hanks"])
        space = mini_generator.interpretations(q)
        a = rank_interpretations(space, UniformModel())
        b = rank_interpretations(space, UniformModel())
        assert [i.describe() for i, _ in a] == [i.describe() for i, _ in b]


class TestDivQModel:
    @pytest.fixture
    def divq_model(self, mini_db, mini_generator):
        catalog = TemplateCatalog(mini_generator.templates)
        return DivQModel(mini_db.require_index(), catalog, database=mini_db)

    def test_cooccurrence_beats_split_binding(self, mini_db, mini_generator, divq_model):
        """"tom hanks" both in actor.name outranks splitting across tables."""
        q = KeywordQuery.from_terms(["tom", "hanks"])
        space = mini_generator.interpretations(q)
        ranked = rank_interpretations(space, divq_model)
        best = ranked[0][0]
        attrs = {(a.table, a.attribute) for a in best.atoms if isinstance(a, ValueAtom)}
        assert attrs == {("actor", "name")}

    def test_check_nonempty_zeroes_empty_results(self, mini_db, mini_generator):
        catalog = TemplateCatalog(mini_generator.templates)
        model = DivQModel(
            mini_db.require_index(), catalog, database=mini_db, check_nonempty=True
        )
        q = KeywordQuery.from_terms(["london", "2004"])
        space = mini_generator.interpretations(q)
        for interp in space:
            w = model.interpretation_weight(interp)
            if not interp.to_structured_query().has_results(mini_db):
                assert w == 0.0

    def test_weights_nonnegative(self, mini_generator, divq_model):
        q = KeywordQuery.from_terms(["hanks", "2001"])
        for interp in mini_generator.interpretations(q):
            assert divq_model.interpretation_weight(interp) >= 0.0
