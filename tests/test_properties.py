"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interpretation import ValueAtom
from repro.core.keywords import Keyword
from repro.core.probability import entropy, normalize
from repro.db.tokenizer import Tokenizer, tokenize
from repro.divq.metrics import alpha_ndcg_w, ws_recall
from repro.divq.similarity import jaccard_atoms
from repro.iqp.infogain import conditional_entropy, information_gain
from repro.iqp.plan import OptionSpace, expected_cost, make_scan_node, ranked_list_cost

# -- strategies ---------------------------------------------------------------

texts = st.text(max_size=80)
weights = st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20)
positive_weights = st.lists(
    st.floats(min_value=1e-6, max_value=100.0), min_size=1, max_size=20
)


def atoms_strategy():
    return st.sets(
        st.builds(
            ValueAtom,
            keyword=st.builds(Keyword, st.integers(0, 3), st.sampled_from(["a", "b", "c"])),
            table=st.sampled_from(["t1", "t2", "t3"]),
            attribute=st.sampled_from(["x", "y"]),
        ),
        max_size=6,
    ).map(frozenset)


# -- tokenizer --------------------------------------------------------------


class TestTokenizerProperties:
    @given(texts)
    def test_tokens_are_normalized(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token.isalnum()

    @given(texts)
    def test_idempotent(self, text):
        once = tokenize(text)
        again = tokenize(" ".join(once))
        assert once == again

    @given(texts, texts)
    def test_concatenation_concatenates(self, a, b):
        assert tokenize(a + " " + b) == tokenize(a) + tokenize(b)

    @given(texts)
    def test_terms_subset_of_tokens(self, text):
        t = Tokenizer()
        assert t.terms(text) == set(t.tokens(text))


# -- probability ----------------------------------------------------------------


class TestProbabilityProperties:
    @given(positive_weights)
    def test_normalize_sums_to_one(self, ws):
        assert math.isclose(sum(normalize(ws)), 1.0, rel_tol=1e-9)

    @given(positive_weights)
    def test_normalize_preserves_order(self, ws):
        probs = normalize(ws)
        for (w1, p1), (w2, p2) in zip(zip(ws, probs), zip(ws[1:], probs[1:])):
            if w1 < w2:
                assert p1 <= p2 + 1e-12

    @given(positive_weights)
    def test_entropy_bounds(self, ws):
        h = entropy(normalize(ws))
        assert -1e-9 <= h <= math.log2(len(ws)) + 1e-9

    @given(positive_weights, st.data())
    def test_information_gain_bounds(self, ws, data):
        pattern = data.draw(
            st.lists(st.booleans(), min_size=len(ws), max_size=len(ws))
        )
        gain = information_gain(ws, pattern)
        h = entropy(normalize(ws))
        assert -1e-9 <= gain <= h + 1e-9

    @given(positive_weights, st.data())
    def test_conditional_entropy_nonnegative(self, ws, data):
        pattern = data.draw(
            st.lists(st.booleans(), min_size=len(ws), max_size=len(ws))
        )
        assert conditional_entropy(ws, pattern) >= -1e-9


# -- similarity ---------------------------------------------------------------


class TestJaccardProperties:
    @given(atoms_strategy(), atoms_strategy())
    def test_range(self, a, b):
        assert 0.0 <= jaccard_atoms(a, b) <= 1.0

    @given(atoms_strategy(), atoms_strategy())
    def test_symmetry(self, a, b):
        assert jaccard_atoms(a, b) == jaccard_atoms(b, a)

    @given(atoms_strategy())
    def test_reflexivity(self, a):
        assert jaccard_atoms(a, a) == 1.0

    @given(atoms_strategy(), atoms_strategy())
    def test_disjoint_nonempty_is_zero(self, a, b):
        if a and b and not (a & b):
            assert jaccard_atoms(a, b) == 0.0


# -- metrics -----------------------------------------------------------------


def entry_lists():
    key_sets = st.frozensets(st.integers(0, 8), max_size=5)
    return st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1.0), key_sets),
        min_size=1,
        max_size=8,
    )


class TestMetricProperties:
    @given(entry_lists(), st.floats(min_value=0.0, max_value=1.0), st.integers(1, 8))
    @settings(max_examples=60)
    def test_alpha_ndcg_w_in_unit_interval(self, entries, alpha, k):
        v = alpha_ndcg_w(entries, alpha, k)
        assert 0.0 <= v <= 1.0

    @given(entry_lists(), st.integers(0, 8))
    @settings(max_examples=60)
    def test_ws_recall_in_unit_interval(self, entries, k):
        v = ws_recall(entries, k)
        assert 0.0 <= v <= 1.0 + 1e-9

    @given(entry_lists())
    @settings(max_examples=60)
    def test_ws_recall_monotone_in_k(self, entries):
        values = [ws_recall(entries, k) for k in range(len(entries) + 1)]
        for earlier, later in zip(values, values[1:]):
            assert later >= earlier - 1e-12

    @given(entry_lists())
    @settings(max_examples=60)
    def test_full_ws_recall_is_one_or_zero(self, entries):
        from repro.divq.metrics import subtopic_relevance

        v = ws_recall(entries, len(entries))
        universe_mass = sum(subtopic_relevance(entries).values())
        if universe_mass > 0:
            assert math.isclose(v, 1.0)
        else:
            assert v == 0.0


# -- plans ---------------------------------------------------------------------


class TestPlanProperties:
    @given(positive_weights)
    def test_ranked_list_cost_bounds(self, ws):
        n = len(ws)
        cost = ranked_list_cost(ws)
        assert 0.0 <= cost <= max(n - 1, 0) + 1e-9 if n <= 2 else cost <= n

    @given(positive_weights)
    def test_scan_node_cost_matches_ranked_list(self, ws):
        n = len(ws)
        space = OptionSpace.build([f"q{i}" for i in range(n)], ws, {})
        node = make_scan_node(space, space.all_indices())
        assert math.isclose(
            expected_cost(node, space), ranked_list_cost(ws), rel_tol=1e-9, abs_tol=1e-9
        )

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_greedy_at_least_brute_force(self, n_queries, n_options, seed):
        from repro.datasets.simulation import random_option_space
        from repro.iqp.brute_force import brute_force_plan
        from repro.iqp.greedy_plan import greedy_plan

        space = random_option_space(n_queries, n_options, seed=seed)
        _bp, b = brute_force_plan(space)
        _gp, g = greedy_plan(space)
        assert g >= b - 1e-9


class TestHierarchyProperties:
    """Pruning invariants of the query hierarchy under random dialogues."""

    @given(st.lists(st.booleans(), min_size=1, max_size=12), st.integers(0, 5))
    @settings(max_examples=25, deadline=None)
    def test_random_answers_preserve_consistency(self, answers, option_skip):
        """Whatever the user answers, every surviving frontier node is
        consistent with every answer given so far."""
        from repro.core.hierarchy import QueryHierarchy
        from repro.core.keywords import KeywordQuery
        from repro.core.probability import UniformModel
        from tests.conftest import build_mini_db
        from repro.core.generator import InterpretationGenerator

        db = build_mini_db()
        generator = InterpretationGenerator(db, max_template_joins=2)
        h = QueryHierarchy(
            KeywordQuery.from_terms(["hanks", "2001"]), generator, UniformModel()
        )
        h.expand_to_complete()
        history = []
        for answer in answers:
            options = h.frontier_atoms()
            if not options:
                break
            option = options[option_skip % len(options)]
            pattern = [option.matches(n.atoms) for n in h.frontier]
            if all(pattern) or not any(pattern):
                continue  # non-splitting, the session would skip it
            history.append((option, answer))
            if answer:
                h.accept(option)
            else:
                h.reject(option)
            if not h.frontier:
                break
        for node in h.frontier:
            for option, answer in history:
                assert option.matches(node.atoms) == answer

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_truthful_answers_keep_intended(self, seed):
        """A truthful oracle never prunes the intended interpretation."""
        import random as _random

        from repro.core.generator import InterpretationGenerator
        from repro.core.hierarchy import QueryHierarchy
        from repro.core.keywords import KeywordQuery
        from repro.core.probability import UniformModel
        from repro.user.oracle import IntendedInterpretation, value_spec
        from tests.conftest import build_mini_db

        db = build_mini_db()
        generator = InterpretationGenerator(db, max_template_joins=2)
        intended = IntendedInterpretation(
            bindings={0: value_spec("actor", "name"), 1: value_spec("movie", "year")},
            template_path=("actor", "acts", "movie"),
        )
        h = QueryHierarchy(
            KeywordQuery.from_terms(["hanks", "2001"]), generator, UniformModel()
        )
        h.expand_to_complete()
        rng = _random.Random(seed)
        for _ in range(8):
            options = [
                o
                for o in h.frontier_atoms()
                if 0 < sum(o.matches(n.atoms) for n in h.frontier) < len(h)
            ]
            if not options:
                break
            option = rng.choice(options)
            if option.is_correct(intended):
                h.accept(option)
            else:
                h.reject(option)
        assert any(
            intended.matches(i) for i in h.complete_interpretations()
        ), "truthful pruning lost the intended interpretation"
