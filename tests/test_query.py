"""Unit tests for repro.core.query (StructuredQuery)."""

from repro.core.query import StructuredQuery
from repro.core.templates import QueryTemplate


def actor_movie_query(mini_db, selections):
    e1 = mini_db.schema.join_edges("actor", "acts")[0]
    e2 = mini_db.schema.join_edges("acts", "movie")[0]
    t = QueryTemplate(path=("actor", "acts", "movie"), edges=(e1, e2))
    return StructuredQuery(template=t, selections=selections)


class TestStructuredQuery:
    def test_size_counts_joins(self, mini_db):
        q = actor_movie_query(mini_db, {})
        assert q.size == 2

    def test_predicate_and_term_counts(self, mini_db):
        q = actor_movie_query(
            mini_db, {0: (("name", ("tom", "hanks")),), 2: (("year", ("2001",)),)}
        )
        assert q.predicate_count() == 2
        assert q.term_count() == 3

    def test_execute(self, mini_db):
        q = actor_movie_query(mini_db, {0: (("name", ("london",)),)})
        rows = q.execute(mini_db)
        assert len(rows) == 1
        assert rows[0][2]["title"] == "london calling"

    def test_count_and_has_results(self, mini_db):
        q = actor_movie_query(mini_db, {0: (("name", ("hanks",)),)})
        assert q.count(mini_db) == 3
        assert q.has_results(mini_db)
        empty = actor_movie_query(mini_db, {0: (("name", ("zzz",)),)})
        assert not empty.has_results(mini_db)

    def test_result_keys_are_uids(self, mini_db):
        q = actor_movie_query(mini_db, {0: (("name", ("london",)),)})
        keys = q.result_keys(mini_db)
        assert keys == {("actor", 3), ("acts", 4), ("movie", 3)}

    def test_result_keys_with_limit(self, mini_db):
        q = actor_movie_query(mini_db, {})
        limited = q.result_keys(mini_db, limit=1)
        assert 0 < len(limited) <= 3

    def test_algebra_rendering(self, mini_db):
        q = actor_movie_query(mini_db, {0: (("name", ("hanks",)),)})
        text = q.algebra()
        assert "sigma_{{hanks} in name}(actor)" in text
        assert "|x|" in text
        assert str(q) == text

    def test_to_sql(self, mini_db):
        q = actor_movie_query(mini_db, {0: (("name", ("hanks",)),)})
        sql = q.to_sql()
        assert sql.startswith("SELECT *")
        assert "LIKE '%hanks%'" in sql

    def test_frozen_dataclass_semantics(self, mini_db):
        q1 = actor_movie_query(mini_db, {})
        q2 = actor_movie_query(mini_db, {})
        assert q1.template == q2.template
