"""Unit tests for repro.iqp.ranking and repro.iqp.session."""

import pytest

from repro.core.keywords import KeywordQuery
from repro.iqp.ranking import Ranker
from repro.iqp.session import ConstructionSession
from repro.user.oracle import IntendedInterpretation, SimulatedUser, value_spec

HANKS_2001 = KeywordQuery.from_terms(["hanks", "2001"])
INTENDED = IntendedInterpretation(
    bindings={0: value_spec("actor", "name"), 1: value_spec("movie", "year")},
    template_path=("actor", "acts", "movie"),
)


class TestRanker:
    def test_ranks_start_at_one(self, mini_generator, mini_model):
        ranked = Ranker(mini_generator, mini_model).rank(HANKS_2001)
        assert [r.rank for r in ranked] == list(range(1, len(ranked) + 1))

    def test_probabilities_descending(self, mini_generator, mini_model):
        ranked = Ranker(mini_generator, mini_model).rank(HANKS_2001)
        probs = [r.probability for r in ranked]
        assert probs == sorted(probs, reverse=True)

    def test_rank_of_intended(self, mini_generator, mini_model):
        ranker = Ranker(mini_generator, mini_model)
        rank = ranker.rank_of(HANKS_2001, INTENDED)
        assert rank is not None and rank >= 1

    def test_rank_of_missing_returns_none(self, mini_generator, mini_model):
        ranker = Ranker(mini_generator, mini_model)
        ghost = IntendedInterpretation(bindings={0: value_spec("company", "name")})
        assert ranker.rank_of(HANKS_2001, ghost) is None

    def test_rank_of_accepts_precomputed_list(self, mini_generator, mini_model):
        ranker = Ranker(mini_generator, mini_model)
        ranked = ranker.rank(HANKS_2001)
        assert ranker.rank_of(HANKS_2001, INTENDED, ranked) == ranker.rank_of(
            HANKS_2001, INTENDED
        )


class TestConstructionSession:
    def test_session_reaches_intended(self, mini_generator, mini_model):
        user = SimulatedUser(INTENDED)
        result = ConstructionSession(HANKS_2001, mini_generator, mini_model).run(user)
        assert result.success
        assert result.shortlist_rank is not None

    def test_interaction_cost_counted(self, mini_generator, mini_model):
        user = SimulatedUser(INTENDED)
        result = ConstructionSession(HANKS_2001, mini_generator, mini_model).run(user)
        assert result.options_evaluated == user.evaluations
        assert len(result.transcript) == result.options_evaluated

    def test_stop_size_one_isolates_intended(self, mini_generator, mini_model):
        user = SimulatedUser(INTENDED)
        session = ConstructionSession(
            HANKS_2001, mini_generator, mini_model, stop_size=1
        )
        result = session.run(user)
        assert result.success
        assert result.shortlist_rank == 1

    def test_lower_stop_size_costs_more(self, mini_generator, mini_model):
        costs = {}
        for stop in (1, 5):
            user = SimulatedUser(INTENDED)
            result = ConstructionSession(
                HANKS_2001, mini_generator, mini_model, stop_size=stop
            ).run(user)
            costs[stop] = result.options_evaluated
        assert costs[1] >= costs[5]

    def test_final_candidates_complete(self, mini_generator, mini_model):
        user = SimulatedUser(INTENDED)
        result = ConstructionSession(HANKS_2001, mini_generator, mini_model).run(user)
        for interp in result.final_candidates:
            assert interp.is_complete

    def test_invalid_threshold(self, mini_generator, mini_model):
        with pytest.raises(ValueError):
            ConstructionSession(HANKS_2001, mini_generator, mini_model, threshold=0)

    def test_unanswerable_query(self, mini_generator, mini_model):
        query = KeywordQuery.from_terms(["zzz"])
        user = SimulatedUser(INTENDED)
        result = ConstructionSession(query, mini_generator, mini_model).run(user)
        assert not result.success

    def test_all_transcript_answers_consistent_with_oracle(
        self, mini_generator, mini_model
    ):
        user = SimulatedUser(INTENDED)
        result = ConstructionSession(
            HANKS_2001, mini_generator, mini_model, stop_size=1
        ).run(user)
        accepted = [d for d, ok in result.transcript if ok]
        for description in accepted:
            assert "actor.name" in description or "movie.year" in description


class TestSimulatedUser:
    def test_evaluation_counter(self, mini_generator):
        user = SimulatedUser(INTENDED)
        from repro.core.interpretation import ValueAtom
        from repro.core.keywords import Keyword
        from repro.core.options import AtomSetOption

        good = AtomSetOption(frozenset([ValueAtom(Keyword(0, "hanks"), "actor", "name")]))
        bad = AtomSetOption(frozenset([ValueAtom(Keyword(0, "hanks"), "movie", "title")]))
        assert user.evaluate(good)
        assert not user.evaluate(bad)
        assert user.evaluations == 2
        assert len(user.accepted) == 1 and len(user.rejected) == 1

    def test_reset(self):
        user = SimulatedUser(INTENDED)
        user.evaluations = 5
        user.reset()
        assert user.evaluations == 0

    def test_frozenset_option_supported(self):
        from repro.core.interpretation import ValueAtom
        from repro.core.keywords import Keyword

        user = SimulatedUser(INTENDED)
        atoms = frozenset([ValueAtom(Keyword(0, "hanks"), "actor", "name")])
        assert user.evaluate(atoms)

    def test_picks_requires_exact_match(self, mini_generator, mini_model):
        user = SimulatedUser(INTENDED)
        ranked = Ranker(mini_generator, mini_model).rank(HANKS_2001)
        picked = [r.interpretation for r in ranked if user.picks(r.interpretation)]
        assert len(picked) == 1
