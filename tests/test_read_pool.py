"""The WAL-backed read-connection pool: lock invariants, concurrent parity.

Three contracts under test:

* **Lock acquisition** — ``_acquire_lock_for`` returns one shared lock object
  per backend instance for ``:memory:`` stores (historically every call site
  got a fresh ``RLock``, so "holding the lock" guarded nothing) and one
  refcounted lock per *path* for file stores, idempotently on repeated calls.
* **Concurrent-read parity** — N threads running mixed cold/warm queries
  through pooled reader connections receive responses byte-identical to
  sequential execution, on both the plain and the sharded file-backed store.
* **Writer visibility** — a post-build insert commits, bumps the write
  epoch, and is visible to every subsequent pooled read: a reader leased
  before the write must not stay pinned to its old WAL snapshot.
"""

from __future__ import annotations

import threading

import pytest

from repro.db.backends import create_backend
from repro.db.backends.sqlite import SQLiteBackend, _acquire_lock_for
from repro.engine import EngineConfig, QueryEngine, ResultCache
from tests.conftest import build_mini_db, mini_schema

QUERIES = ["hanks 2001", "london", "hanks", "2001"]
FILE_BACKENDS = ["sqlite", "sqlite-sharded"]


@pytest.fixture(autouse=True)
def fresh_process_cache():
    ResultCache.clear_process_cache()
    yield
    ResultCache.clear_process_cache()


def _rows(context):
    return [(r.score, r.interpretation_rank, r.row_uids()) for r in context.results]


class TestLockAcquisition:
    """The satellite regression: one lock object per backend instance."""

    def test_memory_lock_is_shared_per_instance(self):
        """Repeated ``:memory:`` acquisitions on one instance return the
        *same* lock object — a fresh ``RLock`` per call would make every
        ``with self._lock:`` site mutually non-exclusive."""
        db = build_mini_db("sqlite")
        assert _acquire_lock_for(db.path, db) is db._lock
        assert _acquire_lock_for(db.path, db) is db._lock

    def test_two_memory_backends_do_not_share_a_lock(self):
        """Distinct ``:memory:`` stores are distinct databases: sharing one
        lock would serialize two unrelated backends against each other."""
        one, two = build_mini_db("sqlite"), build_mini_db("sqlite")
        assert one._lock is not two._lock

    def test_file_backends_share_the_per_path_lock(self, tmp_path):
        path = tmp_path / "shared.sqlite"
        first = build_mini_db("sqlite", db_path=path)
        second = create_backend("sqlite", mini_schema(), path=path)
        try:
            assert first._lock is second._lock
            assert _acquire_lock_for(first.path, first) is first._lock
        finally:
            second.close()
            first.close()


class TestPoolMechanics:
    def test_memory_store_has_no_pool(self):
        db = build_mini_db("sqlite")
        assert not db._read_pool_enabled()
        assert db.read_pool_stats() is None

    def test_size_one_disables_the_pool(self, tmp_path):
        db = create_backend(
            "sqlite", mini_schema(), path=tmp_path / "s.db", read_pool_size=1
        )
        assert not db._read_pool_enabled()
        assert db.read_pool_stats() is None

    def test_create_backend_threads_the_knob(self, tmp_path):
        db = create_backend(
            "sqlite", mini_schema(), path=tmp_path / "s.db", read_pool_size=2
        )
        assert db._read_pool_size == 2

    def test_create_backend_rejects_unsupporting_backends(self):
        with pytest.raises(ValueError, match="read-connection pool"):
            create_backend("memory", mini_schema(), read_pool_size=4)

    def test_configure_rejects_nonpositive_sizes(self, tmp_path):
        db = build_mini_db("sqlite", db_path=tmp_path / "s.db")
        with pytest.raises(ValueError):
            db.configure_read_pool(0)

    def test_engine_config_applies_to_the_backend(self, tmp_path):
        db = build_mini_db("sqlite", db_path=tmp_path / "s.db")
        QueryEngine(db, config=EngineConfig(read_pool_size=3))
        assert db._read_pool_size == 3

    def test_stats_count_leases(self, tmp_path):
        db = build_mini_db("sqlite", db_path=tmp_path / "s.db")
        engine = QueryEngine(
            db, config=EngineConfig(cache_results=False, read_pool_size=4)
        )
        context = engine.run("hanks 2001", k=5)
        stats = db.read_pool_stats()
        assert stats is not None
        assert stats["size"] == 4
        assert stats["leases"] > 0
        assert 1 <= stats["peak_concurrency"] <= 4
        pool = context.executor_statistics.read_pool
        assert pool and pool["leases"] > 0
        assert "read pool:" in "\n".join(context.explain_lines())

    def test_default_pool_capacity_scales_with_shards(self, tmp_path):
        db = build_mini_db("sqlite-sharded", db_path=tmp_path / "s.db")
        assert db._read_pool_enabled()
        assert db._read_pool_capacity() >= db.shards


class TestConcurrentReadParity:
    """N threads x mixed cold/warm queries == sequential, byte for byte."""

    THREADS = 8
    ROUNDS = 3

    @pytest.mark.parametrize("backend", FILE_BACKENDS)
    def test_concurrent_responses_match_sequential(self, tmp_path, backend):
        db = build_mini_db(backend, db_path=tmp_path / "store.db")
        warm = QueryEngine(db, config=EngineConfig(read_pool_size=4))
        cold = QueryEngine(
            db, config=EngineConfig(cache_results=False, read_pool_size=4)
        )
        # The sequential reference (also warms `warm`'s result cache, so the
        # warm lanes below exercise cache hits while the cold lanes keep
        # leasing pooled readers).
        reference = {text: _rows(warm.run(text, k=5)) for text in QUERIES}

        failures: list[str] = []
        barrier = threading.Barrier(self.THREADS)

        def worker(index: int) -> None:
            engine = cold if index % 2 == 0 else warm
            barrier.wait()
            for _round in range(self.ROUNDS):
                for text in QUERIES:
                    if _rows(engine.run(text, k=5)) != reference[text]:
                        failures.append(f"thread {index}: {text!r} diverged")

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        stats = db.read_pool_stats()
        assert stats is not None and stats["leases"] > 0

    @pytest.mark.parametrize("backend", FILE_BACKENDS)
    def test_memory_store_parity_without_a_pool(self, backend):
        """The control arm: the same concurrent workload on a ``:memory:``
        store (pool disabled) stays byte-identical too."""
        db = build_mini_db(backend)
        engine = QueryEngine(db, config=EngineConfig(cache_results=False))
        reference = {text: _rows(engine.run(text, k=5)) for text in QUERIES}
        failures: list[str] = []

        def worker() -> None:
            for text in QUERIES:
                if _rows(engine.run(text, k=5)) != reference[text]:
                    failures.append(text)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures


class TestWriterVisibility:
    """The writer -> readers barrier: committed writes reach pooled reads."""

    @pytest.mark.parametrize("backend", FILE_BACKENDS)
    def test_insert_bumps_epoch_and_is_visible(self, tmp_path, backend):
        db = build_mini_db(backend, db_path=tmp_path / "store.db")
        relation = db.relation("actor")
        # Lease a pooled reader once before the write: if its cursor were
        # left un-reset, the reader would stay pinned to the pre-insert WAL
        # snapshot and the post-insert read below would miss the row.
        assert relation.get(9) is None
        before = db.write_epoch
        db.insert("actor", {"id": 9, "name": "late arrival"})
        assert db.write_epoch > before
        inserted = relation.get(9)
        assert inserted is not None and inserted.get("name") == "late arrival"
        assert len(relation) == 4

    def test_interleaved_writer_thread(self, tmp_path):
        """Reads racing one writer thread always see a legal state and see
        every row once the writer joined."""
        db = build_mini_db("sqlite", db_path=tmp_path / "store.db")
        relation = db.relation("actor")
        stop = threading.Event()
        observed: list[int] = []

        def reader() -> None:
            while not stop.is_set():
                observed.append(len(relation))

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for key in range(10, 15):
                db.insert("actor", {"id": key, "name": f"actor {key}"})
        finally:
            stop.set()
            thread.join()
        assert all(3 <= count <= 8 for count in observed)
        assert len(relation) == 8
        assert sorted(relation.keys())[-1] == 14


class TestPoolLifecycle:
    def test_resize_resets_counters_and_capacity(self, tmp_path):
        db = build_mini_db("sqlite", db_path=tmp_path / "s.db")
        db.relation("actor").get(1)
        assert db.read_pool_stats()["leases"] > 0
        db.configure_read_pool(2)
        stats = db.read_pool_stats()
        assert stats == {
            "size": 2,
            "leases": 0,
            "waits": 0,
            "peak_concurrency": 0,
        }

    def test_close_tears_down_the_pool(self, tmp_path):
        db = build_mini_db("sqlite", db_path=tmp_path / "s.db")
        db.relation("actor").get(1)
        db.close()
        assert db._read_pool is None

    def test_default_pool_size_is_documented_constant(self):
        assert SQLiteBackend.DEFAULT_READ_POOL_SIZE == 4
