"""Unit tests for repro.core.result_ranking and repro.core.topk."""

import pytest

from repro.core.generator import InterpretationGenerator
from repro.core.keywords import KeywordQuery
from repro.core.probability import ATFModel, TemplateCatalog, rank_interpretations
from repro.core.result_ranking import MonotoneResultScorer, SparkResultScorer
from repro.core.topk import TopKExecutor

HANKS_2001 = KeywordQuery.from_terms(["hanks", "2001"])


@pytest.fixture
def ranked_space(mini_db, mini_generator, mini_model):
    space = mini_generator.interpretations(HANKS_2001)
    return rank_interpretations(space, mini_model)


@pytest.fixture
def results(mini_db):
    e1 = mini_db.schema.join_edges("actor", "acts")[0]
    e2 = mini_db.schema.join_edges("acts", "movie")[0]
    return mini_db.execute_path(["actor", "acts", "movie"], [e1, e2])


class TestMonotoneScorer:
    def test_matching_result_outscores_nonmatching(self, mini_db, results):
        scorer = MonotoneResultScorer(mini_db.require_index())
        by_movie = {row[2].key: row for row in results}
        hanks_2001_row = by_movie[2]  # hanks island, 2001
        other_row = by_movie[1]  # terminal, 2004
        assert scorer.score(HANKS_2001, hanks_2001_row) > scorer.score(
            HANKS_2001, other_row
        )

    def test_empty_result_zero(self, mini_db):
        scorer = MonotoneResultScorer(mini_db.require_index())
        assert scorer.score(HANKS_2001, []) == 0.0

    def test_rank_descending(self, mini_db, results):
        scorer = MonotoneResultScorer(mini_db.require_index())
        ranked = scorer.rank(HANKS_2001, results)
        scores = [s for s, _r in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_size_normalization(self, mini_db):
        """A single matching tuple outscores the same tuple padded with free
        tuples (1/size normalization)."""
        scorer = MonotoneResultScorer(mini_db.require_index())
        actor = mini_db.relation("actor").get(1)
        acts = mini_db.relation("acts").get(1)
        short = [actor]
        long = [actor, acts]
        assert scorer.score(HANKS_2001, short) > scorer.score(HANKS_2001, long)

    def test_monotonicity(self, mini_db):
        """Adding a keyword-matching tuple never lowers the unnormalized
        relevance (here: checked via equal-size comparisons)."""
        scorer = MonotoneResultScorer(mini_db.require_index())
        a1 = mini_db.relation("actor").get(1)  # tom hanks
        m2 = mini_db.relation("movie").get(2)  # hanks island 2001
        m1 = mini_db.relation("movie").get(1)  # terminal 2004
        assert scorer.score(HANKS_2001, [a1, m2]) >= scorer.score(HANKS_2001, [a1, m1])


class TestSparkScorer:
    def test_completeness_rewarded(self, mini_db):
        scorer = SparkResultScorer(mini_db.require_index())
        a1 = mini_db.relation("actor").get(1)  # contains "hanks"
        m2 = mini_db.relation("movie").get(2)  # contains "hanks" and "2001"
        both_terms = [a1, m2]
        one_term = [a1, mini_db.relation("movie").get(1)]
        assert scorer.score(HANKS_2001, both_terms) > scorer.score(HANKS_2001, one_term)

    def test_empty(self, mini_db):
        scorer = SparkResultScorer(mini_db.require_index())
        assert scorer.score(HANKS_2001, []) == 0.0
        assert scorer.score(KeywordQuery.from_terms([]), []) == 0.0

    def test_completeness_power_zero_is_or_semantics(self, mini_db):
        or_scorer = SparkResultScorer(mini_db.require_index(), completeness_power=0.0)
        and_scorer = SparkResultScorer(mini_db.require_index(), completeness_power=8.0)
        partial = [mini_db.relation("actor").get(1)]  # only "hanks"
        assert or_scorer.score(HANKS_2001, partial) > and_scorer.score(
            HANKS_2001, partial
        )

    def test_non_monotone_vs_size(self, mini_db):
        """SPARK's size normalization dampens long trees even when they add
        matches — the non-monotone trait."""
        scorer = SparkResultScorer(mini_db.require_index())
        a1 = mini_db.relation("actor").get(1)
        m2 = mini_db.relation("movie").get(2)
        acts = mini_db.relation("acts").get(2)
        dense = scorer.score(HANKS_2001, [a1, m2])
        padded = scorer.score(HANKS_2001, [a1, acts, m2])
        assert dense > padded


class TestTopKExecutor:
    def test_early_stop_matches_naive(self, mini_db, ranked_space):
        executor = TopKExecutor(mini_db)
        smart = executor.execute(ranked_space, k=3)
        smart_stats = executor.statistics
        naive = executor.execute_naive(ranked_space, k=3)
        assert [r.row_uids() for r in smart] == [r.row_uids() for r in naive]
        assert [r.score for r in smart] == [r.score for r in naive]
        assert smart_stats.interpretations_executed <= len(ranked_space)

    def test_early_stopping_saves_work(self, mini_db, ranked_space):
        if len(ranked_space) < 3:
            pytest.skip("space too small to demonstrate early stopping")
        executor = TopKExecutor(mini_db)
        executor.execute(ranked_space, k=1)
        smart_work = executor.statistics.interpretations_executed
        executor.execute_naive(ranked_space, k=1)
        naive_work = executor.statistics.interpretations_executed
        assert smart_work < naive_work

    def test_scores_descending(self, mini_db, ranked_space):
        results = TopKExecutor(mini_db).execute(ranked_space, k=5)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_k_zero(self, mini_db, ranked_space):
        assert TopKExecutor(mini_db).execute(ranked_space, k=0) == []

    def test_negative_k(self, mini_db, ranked_space):
        with pytest.raises(ValueError):
            TopKExecutor(mini_db).execute(ranked_space, k=-1)

    def test_union_semantics_dedup(self, mini_db, ranked_space):
        results = TopKExecutor(mini_db).execute(ranked_space, k=50)
        uids = [r.row_uids() for r in results]
        assert len(uids) == len(set(uids))

    def test_provenance_ranks_valid(self, mini_db, ranked_space):
        for r in TopKExecutor(mini_db).execute(ranked_space, k=10):
            assert 1 <= r.interpretation_rank <= len(ranked_space)
