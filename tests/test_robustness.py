"""Smoke tests of the multi-seed robustness harness (single seed for speed)."""

from repro.experiments.robustness import (
    ShapeCheck,
    check_atf_beats_baseline,
    check_construction_bounded_by_ranking,
    check_diversification_wins_high_alpha,
    check_ontology_qcos_no_worse,
)


class TestShapeChecks:
    def test_atf_beats_baseline_default_seed(self):
        assert check_atf_beats_baseline(seed=7)

    def test_construction_bounded(self):
        assert check_construction_bounded_by_ranking(seed=7)

    def test_diversification_high_alpha(self):
        assert check_diversification_wins_high_alpha(seed=7)

    def test_ontology_qcos(self):
        assert check_ontology_qcos_no_worse(seed=7)


class TestShapeCheckAggregation:
    def test_fraction(self):
        check = ShapeCheck("x", holds=[True, True, False])
        assert check.fraction == 2 / 3

    def test_fraction_empty(self):
        assert ShapeCheck("x").fraction == 0.0
