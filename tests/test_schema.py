"""Unit tests for repro.db.schema."""

import pytest

from repro.db.errors import DuplicateTableError, UnknownAttributeError, UnknownTableError
from repro.db.schema import Attribute, ForeignKey, Schema, Table


def movie_schema() -> Schema:
    s = Schema()
    s.add_table(Table("actor", [Attribute("name")]))
    s.add_table(Table("movie", [Attribute("title"), Attribute("year")]))
    s.add_table(Table("acts", [Attribute("role")]))
    s.link("acts", "actor")
    s.link("acts", "movie")
    return s


class TestTable:
    def test_primary_key_auto_added(self):
        t = Table("actor", [Attribute("name")])
        assert t.primary_key == "id"
        assert t.has_attribute("id")

    def test_pk_attribute_not_textual(self):
        t = Table("actor", [Attribute("name")])
        assert not t.attributes["id"].textual

    def test_textual_attributes(self):
        t = Table("movie", [Attribute("title"), Attribute("id", textual=False)])
        assert [a.name for a in t.textual_attributes()] == ["title"]

    def test_string_attributes_accepted(self):
        t = Table("movie", ["title", "year"])
        assert t.has_attribute("title") and t.has_attribute("year")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError):
            Table("movie", [Attribute("title"), Attribute("title")])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Table("", [Attribute("x")])

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute("")

    def test_table_equality_by_name(self):
        assert Table("a", ["x"]) == Table("a", ["y"])
        assert hash(Table("a", ["x"])) == hash(Table("a", ["y"]))


class TestSchema:
    def test_add_and_lookup(self):
        s = movie_schema()
        assert s.table("actor").name == "actor"
        assert "actor" in s
        assert len(s) == 3

    def test_unknown_table_raises(self):
        with pytest.raises(UnknownTableError):
            movie_schema().table("nope")

    def test_duplicate_table_raises(self):
        s = movie_schema()
        with pytest.raises(DuplicateTableError):
            s.add_table(Table("actor", ["name"]))

    def test_link_creates_fk_attribute(self):
        s = movie_schema()
        assert s.table("acts").has_attribute("actor_id")

    def test_fk_validation(self):
        s = movie_schema()
        with pytest.raises(UnknownAttributeError):
            s.add_foreign_key(ForeignKey("acts", "nope", "actor", "id"))

    def test_fk_unknown_target_table(self):
        s = movie_schema()
        with pytest.raises(UnknownTableError):
            s.add_foreign_key(ForeignKey("acts", "actor_id", "ghost", "id"))

    def test_validate_passes(self):
        movie_schema().validate()


class TestSchemaGraph:
    def test_nodes_are_tables(self):
        s = movie_schema()
        assert set(s.graph().nodes) == {"actor", "movie", "acts"}

    def test_edges_from_fks(self):
        s = movie_schema()
        g = s.graph()
        assert g.has_edge("acts", "actor")
        assert g.has_edge("acts", "movie")
        assert not g.has_edge("actor", "movie")

    def test_adjacent_tables(self):
        s = movie_schema()
        assert s.adjacent_tables("acts") == ["actor", "movie"]
        assert s.adjacent_tables("actor") == ["acts"]

    def test_join_edges_both_directions(self):
        s = movie_schema()
        assert len(s.join_edges("acts", "actor")) == 1
        assert len(s.join_edges("actor", "acts")) == 1
        assert s.join_edges("actor", "movie") == []

    def test_multiple_fks_yield_multi_edges(self):
        s = Schema()
        s.add_table(Table("person", ["name"]))
        s.add_table(Table("movie", ["title"]))
        s.link("movie", "person", source_attr="director_id")
        s.link("movie", "person", source_attr="producer_id")
        assert len(s.join_edges("movie", "person")) == 2

    def test_graph_cache_invalidated_on_add(self):
        s = movie_schema()
        g1 = s.graph()
        s.add_table(Table("company", ["name"]))
        g2 = s.graph()
        assert "company" in g2.nodes and "company" not in g1.nodes


class TestJoinPaths:
    def test_zero_length_paths_are_tables(self):
        s = movie_schema()
        paths = s.join_paths(0)
        assert sorted(paths) == [("actor",), ("acts",), ("movie",)]

    def test_one_join_paths(self):
        s = movie_schema()
        paths = [p for p in s.join_paths(1) if len(p) == 2]
        assert ("actor", "acts") in paths or ("acts", "actor") in paths

    def test_paths_deduplicated_up_to_reversal(self):
        s = movie_schema()
        paths = set(s.join_paths(2))
        for p in paths:
            assert p[::-1] not in paths or p == p[::-1]

    def test_actor_movie_path_exists(self):
        s = movie_schema()
        paths = s.join_paths(2)
        assert ("actor", "acts", "movie") in paths or ("movie", "acts", "actor") in paths

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            movie_schema().join_paths(-1)

    def test_paths_are_simple(self):
        s = movie_schema()
        for p in s.join_paths(3):
            assert len(set(p)) == len(p)

    def test_sorted_by_length(self):
        s = movie_schema()
        lengths = [len(p) for p in s.join_paths(2)]
        assert lengths == sorted(lengths)
