"""Unit tests for repro.core.segmentation (query segmentation)."""

import pytest

from repro.core.keywords import KeywordQuery
from repro.core.segmentation import QuerySegmenter


@pytest.fixture
def segmenter(mini_db) -> QuerySegmenter:
    return QuerySegmenter(mini_db.require_index())


class TestSegmentation:
    def test_person_name_merges(self, segmenter):
        """"tom hanks" co-occurs in one actor.name cell -> one segment."""
        seg = segmenter.segment(KeywordQuery.from_terms(["tom", "hanks"]))
        assert len(seg.segments) == 1
        assert seg.segments[0].terms == ("tom", "hanks")
        assert ("actor", "name") in seg.segments[0].evidence

    def test_unrelated_terms_stay_split(self, segmenter):
        seg = segmenter.segment(KeywordQuery.from_terms(["hanks", "2001"]))
        assert len(seg.segments) == 2
        assert seg.segments[0].terms == ("hanks",)
        assert seg.segments[1].terms == ("2001",)

    def test_partition_covers_query(self, segmenter):
        q = KeywordQuery.from_terms(["tom", "hanks", "terminal"])
        seg = segmenter.segment(q)
        flattened = [k for s in seg.segments for k in s.keywords]
        assert flattened == list(q.keywords)

    def test_three_token_segment(self, mini_db):
        mini_db.insert("actor", {"id": 50, "name": "jean claude damme"})
        mini_db.insert("actor", {"id": 51, "name": "jean claude petit"})
        mini_db.build_indexes()
        segmenter = QuerySegmenter(mini_db.require_index())
        seg = segmenter.segment(KeywordQuery.from_terms(["jean", "claude", "damme"]))
        assert seg.segments[0].terms == ("jean", "claude", "damme")

    def test_empty_query(self, segmenter):
        seg = segmenter.segment(KeywordQuery.from_terms([]))
        assert seg.segments == ()

    def test_single_keyword(self, segmenter):
        seg = segmenter.segment(KeywordQuery.from_terms(["hanks"]))
        assert len(seg.segments) == 1
        assert len(seg.segments[0]) == 1
        assert seg.segments[0].evidence  # all attributes containing it

    def test_multi_keyword_segments_filter(self, segmenter):
        seg = segmenter.segment(KeywordQuery.from_terms(["tom", "hanks", "2001"]))
        multi = seg.multi_keyword_segments()
        assert len(multi) == 1
        assert multi[0].terms == ("tom", "hanks")

    def test_unknown_terms_split(self, segmenter):
        seg = segmenter.segment(KeywordQuery.from_terms(["zzz", "qqq"]))
        assert len(seg.segments) == 2

    def test_min_lift_controls_merging(self, mini_db):
        """With an absurd lift requirement nothing merges."""
        segmenter = QuerySegmenter(mini_db.require_index(), min_lift=1e9)
        seg = segmenter.segment(KeywordQuery.from_terms(["tom", "hanks"]))
        assert len(seg.segments) == 2
