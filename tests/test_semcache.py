"""The semantic result cache: subsumption, warming, persistence, parity.

Bottom-up over the new layer:

* ``PathPlan`` subsumption predicates (pure plan algebra, no storage),
* the SQLite ``cached_result_scan`` hook and its LIKE emulation,
* :class:`SemanticResultCache` answering — filter narrowing, LIMIT
  truncation, completeness refusals, derived-answer re-hits — every answer
  checked byte-identical against uncached execution,
* restart survival of the persisted ``...#plan`` metadata,
* the cross-backend × cross-dataset parity sweep (sqlite, sqlite-sharded ×
  imdb, lyrics), and
* the workload recorder / top-N warmer.
"""

from __future__ import annotations

import pytest

from repro.core.query import StructuredQuery
from repro.core.templates import QueryTemplate
from repro.datasets.imdb import build_imdb
from repro.datasets.lyrics import build_lyrics
from repro.datasets.workload import (
    WORKLOAD_SAMPLERS,
    imdb_workload,
    lyrics_workload,
    recorded_query_log,
)
from repro.db.backends.sql import plan_path
from repro.db.backends.sqlite import _like_matches
from repro.db.schema import ForeignKey
from repro.engine import (
    EngineConfig,
    QueryEngine,
    ResultCache,
    SemanticResultCache,
    top_workload_queries,
    warm_engine,
)
from repro.engine.semcache import PLAN_KEY_SUFFIX, _decode_plan_entry, _encode_plan
from tests.conftest import build_mini_db


@pytest.fixture(autouse=True)
def fresh_process_cache():
    ResultCache.clear_process_cache()
    yield
    ResultCache.clear_process_cache()


# -- query construction helpers ------------------------------------------------


def _template(db, path: tuple[str, ...]) -> QueryTemplate:
    """The template of ``path``, edges resolved from the schema's FKs."""
    edges = []
    for left, right in zip(path, path[1:]):
        edges.append(
            next(
                fk
                for fk in db.schema.foreign_keys
                if {fk.source, fk.target} == {left, right}
            )
        )
    return QueryTemplate(tuple(path), tuple(edges))


def _query(db, path: tuple[str, ...], selections: dict) -> StructuredQuery:
    return StructuredQuery(
        _template(db, path),
        {
            slot: tuple((attr, tuple(terms)) for attr, terms in attrs)
            for slot, attrs in selections.items()
        },
    )


def _plan(db, query: StructuredQuery, limit=None):
    plan = db.plan_path_spec(*query.path_spec(), limit)
    assert plan is not None
    return plan


# Mini-db content (see conftest): "hanks" names actors {1, 2}, "tom" only
# actor 1, "london" only actor 3; movies of year "2001" are {2, 3}.


class TestPathPlanSubsumption:
    """The pure plan-algebra predicates the cache decides with."""

    def test_equal_plans_subsume_with_empty_residual(self, mini_db):
        a = _plan(mini_db, _query(mini_db, ("actor",), {0: [("name", ("hanks",))]}))
        b = _plan(mini_db, _query(mini_db, ("actor",), {0: [("name", ("hanks",))]}))
        assert a.residual_filters(b) == {}
        assert a.subsumes(b)

    def test_superset_filter_subsumes_with_residual(self, mini_db):
        broad = _plan(mini_db, _query(mini_db, ("actor",), {0: [("name", ("hanks",))]}))
        narrow = _plan(mini_db, _query(mini_db, ("actor",), {0: [("name", ("tom",))]}))
        assert broad.residual_filters(narrow) == {0: frozenset({1})}
        assert broad.subsumes(narrow)

    def test_narrower_cached_plan_does_not_subsume(self, mini_db):
        broad = _plan(mini_db, _query(mini_db, ("actor",), {0: [("name", ("hanks",))]}))
        narrow = _plan(mini_db, _query(mini_db, ("actor",), {0: [("name", ("tom",))]}))
        assert narrow.residual_filters(broad) is None

    def test_disjoint_key_filters_do_not_subsume(self, mini_db):
        hanks = _plan(mini_db, _query(mini_db, ("actor",), {0: [("name", ("hanks",))]}))
        london = _plan(
            mini_db, _query(mini_db, ("actor",), {0: [("name", ("london",))]})
        )
        assert hanks.residual_filters(london) is None
        assert london.residual_filters(hanks) is None

    def test_different_join_network_does_not_subsume(self, mini_db):
        single = _plan(mini_db, _query(mini_db, ("movie",), {0: [("year", ("2001",))]}))
        joined = _plan(
            mini_db,
            _query(mini_db, ("actor", "acts", "movie"), {2: [("year", ("2001",))]}),
        )
        assert single.residual_filters(joined) is None

    def test_different_edges_do_not_subsume(self):
        fk_a = ForeignKey("acts", "actor_id", "actor", "id")
        fk_b = ForeignKey("acts", "movie_id", "actor", "id")
        a = plan_path(("actor", "acts"), (fk_a,), {1: {1}}, None)
        b = plan_path(("actor", "acts"), (fk_b,), {1: {1}}, None)
        assert a.residual_filters(b) is None

    def test_order_signature_flips_with_slot_zero_filter(self, mini_db):
        unfiltered = _plan(mini_db, _query(mini_db, ("actor",), {}))
        filtered = _plan(
            mini_db, _query(mini_db, ("actor",), {0: [("name", ("tom",))]})
        )
        assert unfiltered.order_signature() == ("insert",)
        assert filtered.order_signature() == ("key-repr",)
        # Slot-0 rows sort differently, so neither direction may reuse rows —
        # the ORDER-BY negative case of the subsumption rules.
        assert unfiltered.residual_filters(filtered) is None
        assert filtered.residual_filters(unfiltered) is None

    def test_non_zero_slot_filter_keeps_the_signature(self, mini_db):
        base = _query(mini_db, ("actor", "acts", "movie"), {0: [("name", ("hanks",))]})
        narrowed = _query(
            mini_db,
            ("actor", "acts", "movie"),
            {0: [("name", ("hanks",))], 2: [("year", ("2001",))]},
        )
        broad, narrow = _plan(mini_db, base), _plan(mini_db, narrowed)
        assert broad.order_signature() == narrow.order_signature()
        assert broad.residual_filters(narrow) == {2: frozenset({2, 3})}

    def test_post_filters_merge_into_the_logical_filter(self, mini_db):
        # Force the two-key filter past a 1-key inline cap: it becomes a post
        # filter physically, but the *logical* plan must subsume identically.
        spec = _query(mini_db, ("actor",), {0: [("name", ("hanks",))]}).path_spec()
        split = plan_path(
            spec[0],
            spec[1],
            mini_db.resolve_key_filters(spec[0], spec[2]),
            None,
            max_inline_keys=1,
        )
        assert split.post_filters and not split.inline_filters
        inline = _plan(mini_db, _query(mini_db, ("actor",), {0: [("name", ("hanks",))]}))
        assert split.key_filter_map() == inline.key_filter_map()
        narrow = _plan(mini_db, _query(mini_db, ("actor",), {0: [("name", ("tom",))]}))
        assert split.residual_filters(narrow) == {0: frozenset({1})}


class TestLikeEmulation:
    """``_like_matches`` mirrors SQL LIKE over the pending-write buffer."""

    def test_percent_matches_any_run(self):
        assert _like_matches("%#plan", "abc#none#plan")
        assert _like_matches("%#plan", "#plan")
        assert not _like_matches("%#plan", "abc#plan#tail")

    def test_underscore_matches_one_character(self):
        assert _like_matches("a_c", "abc")
        assert not _like_matches("a_c", "abbc")

    def test_regex_metacharacters_are_literal(self):
        assert _like_matches("a.c", "a.c")
        assert not _like_matches("a.c", "abc")
        assert _like_matches("a[1]%", "a[1]rest")

    def test_newlines_inside_keys(self):
        assert _like_matches("%#plan", "line1\nline2#plan")


class TestCachedResultScan:
    def test_memory_backend_has_no_persistence(self, mini_db):
        assert mini_db.cached_result_scan("fp", "%") == []

    def test_scan_merges_pending_over_persisted(self, tmp_path):
        db = build_mini_db("sqlite", db_path=tmp_path / "mini.sqlite")
        db.cached_result_put("fp", "a#plan", "old")
        db.cached_result_put("fp", "b#rows", "rows")
        db.cached_result_flush()
        db.cached_result_put("fp", "a#plan", "new")  # pending overwrite
        db.cached_result_put("fp", "c#plan", "fresh")  # pending only
        db.cached_result_put("other-fp", "d#plan", "elsewhere")
        assert db.cached_result_scan("fp", "%#plan") == [
            ("a#plan", "new"),
            ("c#plan", "fresh"),
        ]
        assert db.cached_result_scan("fp", "%") == [
            ("a#plan", "new"),
            ("b#rows", "rows"),
            ("c#plan", "fresh"),
        ]
        db.close()


class TestPlanPersistenceCodec:
    def test_round_trip(self, mini_db):
        query = _query(
            mini_db,
            ("actor", "acts", "movie"),
            {0: [("name", ("hanks",))], 2: [("year", ("2001",))]},
        )
        plan = _plan(mini_db, query, limit=7)
        payload = _encode_plan(plan)
        assert payload is not None
        entry = _decode_plan_entry("key-of-query#7" + PLAN_KEY_SUFFIX, payload)
        assert entry is not None
        assert entry.cache_key == "key-of-query"
        assert entry.limit == 7
        assert entry.plan.key_filter_map() == plan.key_filter_map()
        assert entry.plan.order_signature() == plan.order_signature()
        assert entry.plan.subsumes(plan) and plan.subsumes(entry.plan)

    def test_unsafe_keys_skip_persistence(self, mini_db):
        plan = plan_path(("actor",), (), {0: {(1, 2)}}, None)  # tuple key
        assert _encode_plan(plan) is None

    def test_corrupt_payloads_decode_to_none(self):
        assert _decode_plan_entry("k#none" + PLAN_KEY_SUFFIX, "not json") is None
        assert _decode_plan_entry("k#none" + PLAN_KEY_SUFFIX, "{}") is None
        assert _decode_plan_entry("k#none", "{}") is None  # wrong suffix


class TestSemanticAnswering:
    """Subsumption answers on the mini db, each checked against execution."""

    def _cache(self, db) -> SemanticResultCache:
        return SemanticResultCache(db)

    def test_filter_narrowing_answers_without_execution(self, mini_db):
        cache = self._cache(mini_db)
        broad = _query(mini_db, ("actor",), {0: [("name", ("hanks",))]})
        narrow = _query(mini_db, ("actor",), {0: [("name", ("tom",))]})
        cache.put(broad, None, broad.execute(mini_db))
        answered = cache.get(narrow, None)
        assert answered == narrow.execute(mini_db)
        assert cache.semantic_statistics.subsumption_hits == 1
        assert cache.semantic_statistics.rows_filtered == 1  # colin hanks dropped
        assert cache.statistics.hits == 1 and cache.statistics.misses == 0

    def test_join_narrowing_at_non_zero_slot(self, mini_db):
        cache = self._cache(mini_db)
        broad = _query(
            mini_db, ("actor", "acts", "movie"), {0: [("name", ("hanks",))]}
        )
        narrow = _query(
            mini_db,
            ("actor", "acts", "movie"),
            {0: [("name", ("hanks",))], 2: [("year", ("2001",))]},
        )
        cache.put(broad, None, broad.execute(mini_db))
        answered = cache.get(narrow, None)
        assert answered == narrow.execute(mini_db)
        assert len(answered) == 2  # both hanks-es act in "hanks island" (2001)
        assert cache.semantic_statistics.rows_filtered == 1  # the 2004 network

    def test_limit_truncation(self, mini_db):
        cache = self._cache(mini_db)
        query = _query(mini_db, ("movie",), {0: [("year", ("2001",))]})
        rows = query.execute(mini_db)
        assert len(rows) == 2
        cache.put(query, None, rows)
        answered = cache.get(query, 1)
        assert answered == query.execute(mini_db, limit=1) == rows[:1]
        assert cache.semantic_statistics.rows_truncated == 1

    def test_narrowing_and_truncation_combine(self, mini_db):
        cache = self._cache(mini_db)
        broad = _query(
            mini_db, ("actor", "acts", "movie"), {0: [("name", ("hanks",))]}
        )
        narrow = _query(
            mini_db,
            ("actor", "acts", "movie"),
            {0: [("name", ("hanks",))], 2: [("year", ("2001",))]},
        )
        cache.put(broad, None, broad.execute(mini_db))
        answered = cache.get(narrow, 1)
        assert answered == narrow.execute(mini_db, limit=1)
        assert cache.semantic_statistics.rows_filtered == 1
        assert cache.semantic_statistics.rows_truncated == 1

    def test_derived_answer_becomes_an_exact_hit(self, mini_db):
        cache = self._cache(mini_db)
        broad = _query(mini_db, ("actor",), {0: [("name", ("hanks",))]})
        narrow = _query(mini_db, ("actor",), {0: [("name", ("tom",))]})
        cache.put(broad, None, broad.execute(mini_db))
        first = cache.get(narrow, None)
        again = cache.get(narrow, None)
        assert again == first
        assert cache.semantic_statistics.subsumption_hits == 1  # not 2
        assert cache.statistics.hits == 2
        # hits - subsumption_hits is the exact-hit count --explain shows.
        assert cache.statistics.hits - cache.semantic_statistics.subsumption_hits == 1

    def test_disjoint_cached_entry_is_a_plain_miss(self, mini_db):
        cache = self._cache(mini_db)
        cache.put(
            _query(mini_db, ("actor",), {0: [("name", ("london",))]}),
            None,
            _query(mini_db, ("actor",), {0: [("name", ("london",))]}).execute(mini_db),
        )
        assert cache.get(_query(mini_db, ("actor",), {0: [("name", ("tom",))]}), None) is None
        assert cache.statistics.misses == 1
        assert cache.semantic_statistics.subsumption_hits == 0

    def test_order_by_mismatch_is_a_plain_miss(self, mini_db):
        cache = self._cache(mini_db)
        unfiltered = _query(mini_db, ("actor",), {})
        cache.put(unfiltered, None, unfiltered.execute(mini_db))
        # All three actors are cached, but insertion order is not key order:
        # the slot-0-filtered variant must re-execute.
        assert cache.get(_query(mini_db, ("actor",), {0: [("name", ("tom",))]}), None) is None

    def test_incomplete_entry_serves_only_prefix_requests(self, mini_db):
        cache = self._cache(mini_db)
        query = _query(mini_db, ("movie",), {0: [("year", ("2001",))]})
        truncated = query.execute(mini_db, limit=2)
        assert len(truncated) == 2  # filled its own LIMIT: maybe incomplete
        cache.put(query, 2, truncated)
        # Pure prefix (lower limit): the one safe reuse of a truncated entry.
        assert cache.get(query, 1) == query.execute(mini_db, limit=1)
        # Unbounded or higher-limit requests may need rows past the cut.
        assert cache.get(query, None) is None
        assert cache.get(query, 3) is None
        # Narrowing needs completeness too: matching rows may be past the cut.
        narrowed = _query(
            mini_db, ("movie",), {0: [("year", ("2001",)), ("title", ("hanks",))]}
        )
        assert cache.get(narrowed, 1) is None

    def test_unfilled_limited_entry_is_complete(self, mini_db):
        cache = self._cache(mini_db)
        query = _query(mini_db, ("movie",), {0: [("year", ("2001",))]})
        rows = query.execute(mini_db, limit=10)
        assert len(rows) == 2  # did not fill the limit: provably complete
        cache.put(query, 10, rows)
        narrowed = _query(
            mini_db, ("movie",), {0: [("year", ("2001",)), ("title", ("hanks",))]}
        )
        assert cache.get(narrowed, None) == narrowed.execute(mini_db)

    def test_provably_empty_query_is_a_plain_miss(self, mini_db):
        cache = self._cache(mini_db)
        broad = _query(mini_db, ("actor",), {0: [("name", ("hanks",))]})
        cache.put(broad, None, broad.execute(mini_db))
        empty = _query(mini_db, ("actor",), {0: [("name", ("zzz",))]})
        assert cache.get(empty, None) is None
        cache.put(empty, None, [])
        # An unplannable (empty) put records rows but no plan metadata.
        assert cache.semantic_statistics.plans_recorded == 1

    def test_exact_semantics_unchanged_from_base_cache(self, mini_db):
        cache = self._cache(mini_db)
        query = _query(mini_db, ("actor",), {0: [("name", ("hanks",))]})
        rows = query.execute(mini_db)
        assert cache.get(query, None) is None
        cache.put(query, None, rows)
        assert cache.get(query, None) == rows
        assert cache.statistics.stores == 1


class TestRestartSurvival:
    def test_subsumption_survives_a_process_restart(self, tmp_path):
        path = tmp_path / "mini.sqlite"
        db = build_mini_db("sqlite", db_path=path)
        cache = SemanticResultCache(db)
        broad = _query(db, ("actor",), {0: [("name", ("hanks",))]})
        narrow = _query(db, ("actor",), {0: [("name", ("tom",))]})
        expected = narrow.execute(db)
        cache.put(broad, None, broad.execute(db))
        cache.flush()
        db.close()

        ResultCache.clear_process_cache()  # simulate the next process
        from tests.conftest import mini_schema
        from repro.db.backends.sqlite import SQLiteBackend

        reopened = SQLiteBackend(mini_schema(), path=path)
        reopened.build_indexes()
        fresh = SemanticResultCache(reopened)
        answered = fresh.get(_query(reopened, ("actor",), {0: [("name", ("tom",))]}), None)
        assert answered == expected
        assert fresh.semantic_statistics.subsumption_hits == 1
        reopened.close()


def _narrowed_variant(db, query: StructuredQuery) -> StructuredQuery | None:
    """A strictly-or-equally narrower variant of ``query``, built from data.

    Adds one extra keyword predicate at a *non-zero* slot (slot 0 would flip
    the ORDER BY signature), taken from an attribute value of an actual
    result network — so the variant provably matches at least that network
    and its resolved keys are a subset of the original's.
    """
    rows = db.execute_path(*query.path_spec())
    if not rows:
        return None
    template = query.template
    for slot in range(1, len(template.path)):
        table = db.schema.table(template.path[slot])
        for attribute in table.textual_attributes():
            value = dict(rows[0][slot].values).get(attribute.name)
            tokens = db.tokenizer.tokens(str(value)) if value is not None else []
            if not tokens:
                continue
            selections = dict(query.selections)
            existing = selections.get(slot, ())
            selections[slot] = existing + ((attribute.name, (tokens[0],)),)
            return StructuredQuery(template, selections)
    return None


@pytest.mark.parametrize("backend", ["sqlite", "sqlite-sharded"])
@pytest.mark.parametrize("dataset", ["imdb", "lyrics"])
class TestParityAcrossBackends:
    """Byte-identical subsumption answers on every persistent backend."""

    def _build(self, dataset, backend, tmp_path):
        builders = {
            "imdb": lambda **kw: build_imdb(n_movies=60, n_actors=40, **kw),
            "lyrics": lambda **kw: build_lyrics(n_artists=25, **kw),
        }
        kwargs = {"shards": 2} if backend == "sqlite-sharded" else {}
        return builders[dataset](
            backend=backend, db_path=tmp_path / f"{dataset}.sqlite", **kwargs
        )

    def _subsumption_cases(self, db, dataset):
        """(broad query, narrow variant) pairs derived from the workload."""
        engine = QueryEngine(db, config=EngineConfig(cache_results=False))
        sampler = WORKLOAD_SAMPLERS[dataset]
        cases = []
        for item in sampler(db, n_queries=8, seed=7):
            for interpretation, _score in engine.rank(item.query):
                query = interpretation.to_structured_query()
                variant = _narrowed_variant(db, query)
                if variant is not None:
                    cases.append((query, variant))
                    break
            if len(cases) >= 3:
                break
        return cases

    def test_narrowing_and_truncation_parity(self, dataset, backend, tmp_path):
        db = self._build(dataset, backend, tmp_path)
        cases = self._subsumption_cases(db, dataset)
        assert cases, "workload produced no narrowable query"
        cache = SemanticResultCache(db)
        for broad, narrow in cases:
            cache.put(broad, None, db.execute_path(*broad.path_spec()))
        hits_before = cache.semantic_statistics.subsumption_hits
        for broad, narrow in cases:
            # Filter narrowing: byte-identical to uncached execution.
            assert cache.get(narrow, None) == db.execute_path(*narrow.path_spec())
            # LIMIT truncation of the cached entry itself.
            assert cache.get(broad, 1) == db.execute_path(
                *broad.path_spec(), limit=1
            )
        assert cache.semantic_statistics.subsumption_hits - hits_before == 2 * len(
            cases
        )
        db.close()


class TestWorkloadRecorder:
    def test_log_is_deterministic(self, imdb_db):
        a = recorded_query_log(imdb_db, "imdb", n_events=40, distinct=6, seed=13)
        b = recorded_query_log(imdb_db, "imdb", n_events=40, distinct=6, seed=13)
        assert a == b
        assert len(a) == 40
        assert len(set(a)) <= 6

    def test_zipf_skews_toward_hot_queries(self, imdb_db):
        log = recorded_query_log(imdb_db, "imdb", n_events=200, distinct=10, seed=13)
        counts = sorted(
            (log.count(text) for text in set(log)), reverse=True
        )
        assert counts[0] > counts[-1]  # a head exists

    def test_unknown_dataset_raises(self, imdb_db):
        with pytest.raises(ValueError, match="unknown dataset"):
            recorded_query_log(imdb_db, "freebase")


class TestTopWorkloadQueries:
    def test_ranked_by_frequency_then_first_seen(self):
        log = ["b", "a", "b", "c", "a", "b", "c"]
        assert top_workload_queries(log, 3) == ["b", "a", "c"]  # a before c: tie
        assert top_workload_queries(log, 2) == ["b", "a"]

    def test_non_positive_n_is_empty(self):
        assert top_workload_queries(["a"], 0) == []
        assert top_workload_queries(["a"], -2) == []


class TestWarmer:
    def test_warm_engine_replays_and_reports(self, mini_db):
        engine = QueryEngine(mini_db, config=EngineConfig(semantic_cache=True))
        log = ["hanks", "hanks", "london", "2001"]
        report = warm_engine(engine, log, top_n=2)
        assert report.queries_replayed == 2
        assert report.log_events == 4 and report.distinct_queries == 3
        assert report.entries_stored > 0
        assert engine.warming is report
        # The hottest query is now served from the cache.
        warm = engine.run("hanks", k=5)
        assert warm.executor_statistics.interpretations_executed == 0
        assert warm.executor_statistics.warmed_queries == 2

    def test_warming_is_clamped_to_the_cache_capacity(self, mini_db):
        engine = QueryEngine(
            mini_db, config=EngineConfig(semantic_cache=True, result_cache_size=2)
        )
        report = warm_engine(engine, ["a b", "c d", "e f"], top_n=10)
        assert report.capacity == 2
        assert report.queries_replayed == 2

    def test_hottest_query_is_replayed_last(self, mini_db):
        """Coldest-first replay: the hottest query's entries are the most
        recent in the LRU, so capacity pressure evicts colder entries first."""
        from repro.engine.cache import _PROCESS_CACHE

        engine = QueryEngine(mini_db, config=EngineConfig(semantic_cache=True))
        warm_engine(engine, ["london", "hanks", "hanks"], top_n=2)
        hot_keys = {
            interpretation.to_structured_query().cache_key()
            for interpretation, _score in engine.rank("hanks")
        }
        newest_entry_key = next(reversed(_PROCESS_CACHE))
        assert newest_entry_key[1] in hot_keys

    def test_engine_config_warms_through_for_dataset(self):
        engine = QueryEngine.for_dataset(
            "imdb", config=EngineConfig(semantic_cache=True, warm_workload=3)
        )
        assert engine.warming is not None
        assert engine.warming.queries_replayed == 3
        context = engine.run("hanks 2001", explain=True)
        assert context.executor_statistics.warmed_queries == 3
        assert any("warmer: 3 workload" in line for line in context.explain_lines())

    def test_no_cache_engine_warms_nothing(self, mini_db):
        engine = QueryEngine(mini_db, config=EngineConfig(cache_results=False))
        report = warm_engine(engine, ["hanks"], top_n=5)
        assert report.queries_replayed == 0 and report.entries_stored == 0


class TestEngineIntegration:
    def test_explain_splits_exact_and_subsumption_hits(self, mini_db):
        engine = QueryEngine(mini_db, config=EngineConfig(semantic_cache=True))
        engine.run("hanks", k=5)
        context = engine.run("hanks", k=5, explain=True)
        stats = context.executor_statistics
        assert stats.semantic_cache
        assert stats.cache_hits > 0 and stats.cache_subsumption_hits == 0
        cache_line = next(
            line for line in context.explain_lines() if "result cache" in line
        )
        assert f"({stats.cache_hits} exact, 0 subsumption)" in cache_line

    def test_executor_attributes_subsumption_per_query(self, mini_db):
        from repro.core.topk import TopKExecutor

        cache = SemanticResultCache(mini_db)
        broad = _query(mini_db, ("actor",), {0: [("name", ("hanks",))]})
        cache.put(broad, None, broad.execute(mini_db))

        narrow = _query(mini_db, ("actor",), {0: [("name", ("tom",))]})

        class _Interpretation:
            def to_structured_query(self):
                return narrow

        executor = TopKExecutor(mini_db, per_query_limit=None, cache=cache)
        results = executor.execute([(_Interpretation(), 1.0)], k=5)
        assert [r.row for r in results] == [
            row for row in narrow.execute(mini_db)
        ]
        assert executor.statistics.sql_statements == 0
        assert executor.statistics.interpretations_executed == 0
        assert executor.statistics.cache_subsumption_hits == 1
        assert executor.statistics.cache_rows_filtered == 1

    def test_plain_cache_reports_no_semantic_fields(self, mini_db):
        engine = QueryEngine(mini_db)  # default exact-only cache
        context = engine.run("hanks", k=5, explain=True)
        assert not context.executor_statistics.semantic_cache
        cache_line = next(
            line for line in context.explain_lines() if "result cache" in line
        )
        assert "subsumption" not in cache_line
