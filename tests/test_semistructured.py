"""Unit tests for repro.semistructured (XML SLCA + RDF subgraph search)."""

import pytest

from repro.core.keywords import KeywordQuery
from repro.semistructured.rdfgraph import RdfGraph, rdf_keyword_search
from repro.semistructured.xmltree import XmlNode, XmlTree, slca_search


@pytest.fixture
def movie_xml() -> XmlTree:
    """<movies> with two <movie> subtrees (the usual XML-search example)."""
    root = XmlNode("movies")
    m1 = root.child("movie")
    m1.child("title", "the terminal")
    cast1 = m1.child("cast")
    cast1.child("actor", "tom hanks")
    cast1.child("actor", "catherine zeta jones")
    m2 = root.child("movie")
    m2.child("title", "cast away")
    cast2 = m2.child("cast")
    cast2.child("actor", "tom hanks")
    cast2.child("actor", "helen hunt")
    return XmlTree(root)


class TestXmlTree:
    def test_dewey_labels(self, movie_xml):
        assert movie_xml.node(()).tag == "movies"
        assert movie_xml.node((0,)).tag == "movie"
        assert movie_xml.node((0, 0)).text == "the terminal"

    def test_keyword_index_text_and_tags(self, movie_xml):
        assert (0, 0) in movie_xml.keyword_nodes("terminal")
        assert (0,) in movie_xml.keyword_nodes("movie")  # tag match

    def test_common_prefix(self):
        assert XmlTree.common_prefix((0, 1, 2), (0, 1, 5)) == (0, 1)
        assert XmlTree.common_prefix((0,), (1,)) == ()

    def test_is_ancestor(self):
        assert XmlTree.is_ancestor((0,), (0, 1, 2))
        assert XmlTree.is_ancestor((0, 1), (0, 1))
        assert not XmlTree.is_ancestor((0, 1), (0, 2))

    def test_subtree_text(self, movie_xml):
        text = movie_xml.subtree_text((0,))
        assert "terminal" in text and "hanks" in text

    def test_node_count(self, movie_xml):
        assert len(movie_xml) == 11


class TestSlcaSearch:
    def test_keywords_in_one_movie(self, movie_xml):
        """hanks + terminal co-occur only in movie 0: SLCA is that movie."""
        results = slca_search(movie_xml, KeywordQuery.from_terms(["hanks", "terminal"]))
        assert results == [(0,)]

    def test_keyword_in_both_movies(self, movie_xml):
        """hanks alone: the SLCAs are the two actor nodes, not the root."""
        results = slca_search(movie_xml, KeywordQuery.from_terms(["hanks"]))
        assert results == [(0, 1, 0), (1, 1, 0)]

    def test_cross_movie_keywords_ascend_to_root(self, movie_xml):
        """terminal + hunt only co-occur under the root."""
        results = slca_search(movie_xml, KeywordQuery.from_terms(["terminal", "hunt"]))
        assert results == [()]

    def test_smallest_results_win(self, movie_xml):
        """SLCA excludes ancestors of other results (the minimality analogue)."""
        results = slca_search(movie_xml, KeywordQuery.from_terms(["hanks", "cast"]))
        for r in results:
            for other in results:
                if r != other:
                    assert not XmlTree.is_ancestor(r, other)

    def test_unmatched_keyword_and_semantics(self, movie_xml):
        assert slca_search(movie_xml, KeywordQuery.from_terms(["hanks", "zzz"])) == []

    def test_empty_query(self, movie_xml):
        assert slca_search(movie_xml, KeywordQuery.from_terms([])) == []

    def test_results_contain_all_keywords(self, movie_xml):
        query = KeywordQuery.from_terms(["hanks", "terminal"])
        for dewey in slca_search(movie_xml, query):
            text = movie_xml.subtree_text(dewey)
            for term in query.terms:
                assert term in text


@pytest.fixture
def movie_rdf() -> RdfGraph:
    g = RdfGraph()
    g.add("tom_hanks", "acts_in", "the_terminal")
    g.add("tom_hanks", "acts_in", "cast_away")
    g.add("helen_hunt", "acts_in", "cast_away")
    g.add("the_terminal", "directed_by", "steven_spielberg")
    g.add("cast_away", "directed_by", "robert_zemeckis")
    return g


class TestRdfSearch:
    def test_keyword_nodes(self, movie_rdf):
        assert "tom_hanks" in movie_rdf.keyword_nodes("hanks")
        assert "the_terminal" in movie_rdf.keyword_nodes("terminal")

    def test_direct_connection(self, movie_rdf):
        results = rdf_keyword_search(movie_rdf, KeywordQuery.from_terms(["hanks", "terminal"]))
        assert results
        best = results[0]
        assert {"tom_hanks", "the_terminal"} <= best.nodes
        assert best.cost <= 1.0

    def test_two_hop_connection(self, movie_rdf):
        """hanks -- cast_away -- hunt: the minimal subgraph spans 3 nodes."""
        results = rdf_keyword_search(movie_rdf, KeywordQuery.from_terms(["hanks", "hunt"]))
        best = results[0]
        assert {"tom_hanks", "cast_away", "helen_hunt"} <= best.nodes

    def test_costs_ascending(self, movie_rdf):
        results = rdf_keyword_search(
            movie_rdf, KeywordQuery.from_terms(["hanks", "spielberg"]), k=5
        )
        costs = [r.cost for r in results]
        assert costs == sorted(costs)

    def test_unmatched_keyword(self, movie_rdf):
        assert rdf_keyword_search(movie_rdf, KeywordQuery.from_terms(["zzz"])) == []

    def test_single_keyword(self, movie_rdf):
        results = rdf_keyword_search(movie_rdf, KeywordQuery.from_terms(["hanks"]))
        assert results and results[0].cost == 0.0

    def test_results_deduplicated(self, movie_rdf):
        results = rdf_keyword_search(movie_rdf, KeywordQuery.from_terms(["acts"]), k=10)
        node_sets = [r.nodes for r in results]
        assert len(node_sets) == len(set(node_sets))

    def test_triples_and_neighbors(self, movie_rdf):
        assert len(movie_rdf) == 5
        assert "the_terminal" in movie_rdf.neighbors("tom_hanks")
        assert movie_rdf.neighbors("ghost") == []
