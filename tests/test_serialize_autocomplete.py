"""Unit tests for repro.db.serialize and repro.core.autocomplete."""

import json

import pytest

from repro.core.autocomplete import AutoCompleter
from repro.db.serialize import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
    schema_from_dict,
    schema_to_dict,
)


class TestSchemaRoundTrip:
    def test_tables_preserved(self, mini_db):
        restored = schema_from_dict(schema_to_dict(mini_db.schema))
        assert restored.table_names == mini_db.schema.table_names

    def test_attributes_preserved(self, mini_db):
        restored = schema_from_dict(schema_to_dict(mini_db.schema))
        for name in mini_db.schema.table_names:
            original = mini_db.schema.table(name)
            copy = restored.table(name)
            assert copy.attribute_names == original.attribute_names
            assert copy.primary_key == original.primary_key
            for attr in original.attributes.values():
                assert copy.attributes[attr.name].textual == attr.textual

    def test_foreign_keys_preserved(self, mini_db):
        restored = schema_from_dict(schema_to_dict(mini_db.schema))
        assert restored.foreign_keys == mini_db.schema.foreign_keys


class TestDatabaseRoundTrip:
    def test_rows_preserved(self, mini_db):
        restored = database_from_dict(database_to_dict(mini_db))
        assert restored.total_tuples() == mini_db.total_tuples()
        assert restored.relation("actor").get(1).get("name") == "tom hanks"

    def test_index_rebuilt(self, mini_db):
        restored = database_from_dict(database_to_dict(mini_db))
        assert restored.index is not None
        assert restored.index.tables_containing("hanks") == {"actor", "movie"}

    def test_joins_work_after_restore(self, mini_db):
        restored = database_from_dict(database_to_dict(mini_db))
        e1 = restored.schema.join_edges("actor", "acts")[0]
        e2 = restored.schema.join_edges("acts", "movie")[0]
        rows = restored.execute_path(
            ["actor", "acts", "movie"], [e1, e2], {0: [("name", ("hanks",))]}
        )
        assert len(rows) == 3

    def test_payload_is_json_serializable(self, mini_db):
        json.dumps(database_to_dict(mini_db))

    def test_file_round_trip(self, mini_db, tmp_path):
        path = tmp_path / "db.json"
        save_database(mini_db, path)
        restored = load_database(path)
        assert restored.total_tuples() == mini_db.total_tuples()

    def test_version_check(self, mini_db):
        payload = database_to_dict(mini_db)
        payload["version"] = 99
        with pytest.raises(ValueError):
            database_from_dict(payload)


class TestAutoCompleter:
    @pytest.fixture
    def completer(self, mini_db):
        return AutoCompleter(mini_db.require_index())

    def test_exact_prefix(self, completer):
        suggestions = completer.complete("han")
        assert suggestions
        assert suggestions[0].term == "hanks"
        assert not suggestions[0].fuzzy

    def test_frequency_order(self, completer):
        # "hanks" (3 occurrences) should precede rarer 'h...' terms if any.
        terms = [s.term for s in completer.complete("h")]
        assert terms[0] == "hanks"

    def test_full_term_prefix(self, completer):
        suggestions = completer.complete("london")
        assert any(s.term == "london" for s in suggestions)

    def test_fuzzy_fallback(self, completer):
        """Misspelled prefix 'hsnk' still reaches 'hanks' fuzzily."""
        suggestions = completer.complete("hsnk")
        assert suggestions
        assert any(s.term == "hanks" for s in suggestions)
        assert all(s.fuzzy for s in suggestions)

    def test_no_match(self, completer):
        assert completer.complete("qqqqq") == []

    def test_empty_prefix(self, completer):
        assert completer.complete("") == []
        assert completer.complete("   ") == []

    def test_case_insensitive(self, completer):
        assert completer.complete("HAN")[0].term == "hanks"

    def test_max_suggestions(self, mini_db):
        completer = AutoCompleter(mini_db.require_index(), max_suggestions=2)
        assert len(completer.complete("t")) <= 2
