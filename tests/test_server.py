"""QueryServer: engine pooling, concurrent isolation, the bench driver.

The invariant under test: fanning queries across the server's worker pool
changes *when* work happens, never *what* comes back — every concurrent
response equals the sequentially computed answer, per-query contexts are
never shared, and the shared result cache / SQLite connection survive
concurrent hammering (including the two-engines-one-file flush race).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import EngineConfig, QueryEngine, ResultCache
from repro.server import (
    AsyncQueryFrontend,
    BenchServeReport,
    QueryServer,
    benchmark_serve,
    workload_texts,
)

QUERIES = ["hanks 2001", "london", "summer", "stone hill", "hanks", "2001"]


@pytest.fixture(autouse=True)
def fresh_process_cache():
    ResultCache.clear_process_cache()
    yield
    ResultCache.clear_process_cache()


@pytest.fixture
def imdb_factory(imdb_db):
    """An engine factory over the session-scoped imdb store (no rebuilds)."""

    def factory(dataset, backend, db_path, shards, config):
        assert dataset == "imdb" and backend == "memory" and db_path is None
        assert shards is None
        kwargs = {} if config is None else {"config": config}
        return QueryEngine(imdb_db, **kwargs)

    return factory


@pytest.fixture
def imdb_server(imdb_factory):
    with QueryServer(max_workers=8, engine_factory=imdb_factory) as server:
        yield server


class TestEnginePool:
    def test_one_engine_per_key(self):
        with QueryServer(max_workers=2) as server:
            first = server.engine_for("imdb")
            second = server.engine_for("imdb")
            other = server.engine_for("lyrics")
            assert first is second
            assert first is not other
            assert server.pooled_engines == 2

    def test_pool_keys_are_shard_aware(self, imdb_db):
        """Two shard layouts of one dataset are two pooled engines — but an
        unspecified count and the explicit default share one."""
        from repro.db.backends import ShardedSQLiteBackend

        built_keys = []

        def factory(dataset, backend, db_path, shards, config):
            built_keys.append((dataset, backend, db_path, shards))
            return QueryEngine(imdb_db)

        default_count = ShardedSQLiteBackend.DEFAULT_SHARDS
        with QueryServer(max_workers=1, engine_factory=factory) as server:
            default = server.engine_for("imdb", backend="sqlite-sharded")
            explicit_default = server.engine_for(
                "imdb", backend="sqlite-sharded", shards=default_count
            )
            sharded = server.engine_for("imdb", backend="sqlite-sharded", shards=4)
            again = server.engine_for("imdb", backend="sqlite-sharded", shards=4)
            assert default is explicit_default  # normalized pool key
            assert sharded is again
            assert default is not sharded
            assert server.pooled_engines == 2
        assert [key[3] for key in built_keys] == [default_count, 4]

    def test_engine_config_reaches_the_pool(self):
        config = EngineConfig(k=3, batch_execution=False)
        with QueryServer(max_workers=1, engine_config=config) as server:
            engine = server.engine_for("imdb")
            assert engine.config is config
            assert server.query("imdb", "london").context.k == 3

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            QueryServer(max_workers=0)

    def test_submit_after_close_raises(self):
        server = QueryServer(max_workers=1)
        server.close()
        with pytest.raises(RuntimeError):
            server.submit("imdb", "london")
        server.close()  # idempotent

    def test_failed_build_releases_its_construction_lock(self, imdb_db):
        """A factory failure must not leave the per-key construction lock
        behind (the leak would hold the entry forever) — and a retry on the
        same key must run the factory again and succeed."""
        attempts = []

        def flaky(dataset, backend, db_path, shards, config):
            attempts.append(dataset)
            if len(attempts) == 1:
                raise ValueError("first build fails")
            return QueryEngine(imdb_db)

        with QueryServer(max_workers=1, engine_factory=flaky) as server:
            with pytest.raises(ValueError):
                server.engine_for("imdb")
            assert server._building == {}  # nothing left behind
            assert server.pooled_engines == 0
            engine = server.engine_for("imdb")  # retry rebuilds cleanly
            assert engine is server.engine_for("imdb")
            assert server._building == {}
        assert attempts == ["imdb", "imdb"]


class TestConcurrentIsolation:
    def test_concurrent_queries_match_sequential(self, imdb_server, imdb_db):
        reference = QueryEngine(imdb_db)
        expected = {
            text: [r.row_uids() for r in reference.run(text, k=5).results]
            for text in QUERIES
        }
        futures = [imdb_server.submit("imdb", text, k=5) for text in QUERIES * 6]
        responses = [future.result() for future in futures]
        assert len(responses) == len(QUERIES) * 6
        for response in responses:
            assert response.result_uids() == expected[response.query]

    def test_contexts_are_isolated_per_query(self, imdb_server):
        futures = [imdb_server.submit("imdb", text) for text in QUERIES]
        contexts = [future.result().context for future in futures]
        assert len({id(context) for context in contexts}) == len(contexts)
        by_text = {context.query_text: context for context in contexts}
        assert set(by_text) == set(QUERIES)

    def test_many_workers_actually_run_concurrently(self, imdb_server):
        """Distinct worker threads serve a saturated submission burst."""
        futures = [imdb_server.submit("imdb", text) for text in QUERIES * 4]
        workers = {future.result().worker for future in futures}
        assert len(workers) > 1

    def test_concurrent_sqlite_queries_share_one_locked_connection(self, tmp_path):
        path = tmp_path / "served.sqlite"
        with QueryServer(max_workers=8) as server:
            engine = server.engine_for("imdb", backend="sqlite", db_path=path)
            expected = {
                text: [r.row_uids() for r in engine.run(text, k=5).results]
                for text in QUERIES
            }
            futures = [
                server.submit("imdb", text, k=5, backend="sqlite", db_path=path)
                for text in QUERIES * 6
            ]
            for future in futures:
                response = future.result()
                assert response.result_uids() == expected[response.query]


class TestTwoEnginesOneFile:
    """Regression: concurrent cache flushes of two engines sharing a file."""

    def test_shared_file_flush_race(self, tmp_path):
        path = tmp_path / "shared.sqlite"
        QueryEngine.for_dataset("imdb", backend="sqlite", db_path=path).backend.close()

        engines = [
            QueryEngine.for_dataset("imdb", backend="sqlite", db_path=path)
            for _ in range(2)
        ]
        errors: list[BaseException] = []

        def hammer(engine: QueryEngine) -> None:
            try:
                for text in QUERIES * 3:
                    engine.run(text, k=5)  # ExecuteStage flushes per run
                engine.backend.close()  # flush-on-close, racing the sibling
            except BaseException as exc:  # noqa: BLE001 - the regression signal
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(e,)) for e in engines]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        # The store stays fully usable afterwards.
        survivor = QueryEngine.for_dataset("imdb", backend="sqlite", db_path=path)
        assert survivor.run("london", k=5).results
        survivor.backend.close()


class TestBenchDriver:
    def test_benchmark_serve_verifies_results(self, imdb_factory):
        report = benchmark_serve(
            "imdb",
            clients=8,
            queries_per_client=3,
            k=5,
            seed=3,
            engine_factory=imdb_factory,
        )
        assert isinstance(report, BenchServeReport)
        assert report.ok
        assert report.total_queries == 24
        assert len(report.latencies) == 24
        assert report.throughput_qps > 0
        assert report.latency_at(0.50) <= report.latency_at(0.95) <= report.latency_at(1.0)
        assert any("p95" in line for line in report.lines())

    def test_benchmark_serve_on_sqlite(self, tmp_path):
        report = benchmark_serve(
            "imdb",
            backend="sqlite",
            db_path=tmp_path / "bench.sqlite",
            clients=8,
            queries_per_client=2,
            k=5,
        )
        assert report.ok
        assert report.total_queries == 16

    def test_workload_texts_are_answerable(self, imdb_db):
        engine = QueryEngine(imdb_db)
        texts = workload_texts(engine, "imdb")
        assert len(texts) >= 10
        assert all(engine.rank(text) for text in texts)

    def test_workload_texts_unknown_dataset(self, imdb_db):
        with pytest.raises(ValueError, match="no workload"):
            workload_texts(QueryEngine(imdb_db), "freebase")

    def test_mismatch_counting(self):
        report = BenchServeReport(
            dataset="imdb",
            backend="memory",
            clients=1,
            queries_per_client=1,
            distinct_queries=1,
            seconds=1.0,
            latencies=[0.1],
            mismatches=2,
        )
        assert not report.ok
        assert any("MISMATCH" in line for line in report.lines())

    def test_verification_is_reported_outside_the_serve_phase(self, imdb_factory):
        """The serve clock stops before verification runs (the former
        wall-clock-includes-verification bug)."""
        report = benchmark_serve(
            "imdb",
            clients=2,
            queries_per_client=2,
            k=5,
            engine_factory=imdb_factory,
        )
        assert report.ok
        assert report.verify_seconds >= 0.0
        assert report.transport == "threads"
        assert any("serve phase" in line for line in report.lines())
        assert any("untimed" in line for line in report.lines())
        assert any("transport=threads" in line for line in report.lines())


class TestAsyncFrontend:
    def test_async_query_matches_sync(self, imdb_server, imdb_db):
        import asyncio

        reference = QueryEngine(imdb_db)
        expected = {
            text: [r.row_uids() for r in reference.run(text, k=5).results]
            for text in QUERIES
        }
        frontend = AsyncQueryFrontend(imdb_server)

        async def drive():
            responses = await asyncio.gather(
                *(frontend.query("imdb", text, k=5) for text in QUERIES * 3)
            )
            return responses

        responses = asyncio.run(drive())
        assert len(responses) == len(QUERIES) * 3
        for response in responses:
            assert response.result_uids() == expected[response.query]

    def test_benchmark_serve_async_transport(self, imdb_factory):
        report = benchmark_serve(
            "imdb",
            clients=4,
            queries_per_client=3,
            k=5,
            seed=3,
            engine_factory=imdb_factory,
            use_async=True,
        )
        assert report.ok
        assert report.transport == "asyncio"
        assert report.total_queries == 12
        assert len(report.latencies) == 12
        assert any("transport=asyncio" in line for line in report.lines())

    def test_async_and_threaded_replay_the_same_workload(self, imdb_factory):
        """Same seeds → same sampled queries on both transports."""
        threaded = benchmark_serve(
            "imdb", clients=2, queries_per_client=3, k=3, seed=7,
            engine_factory=imdb_factory,
        )
        ResultCache.clear_process_cache()
        asynchronous = benchmark_serve(
            "imdb", clients=2, queries_per_client=3, k=3, seed=7,
            engine_factory=imdb_factory, use_async=True,
        )
        assert threaded.ok and asynchronous.ok
        assert threaded.total_queries == asynchronous.total_queries
        assert threaded.distinct_queries == asynchronous.distinct_queries


class TestServeCLI:
    def test_serve_reads_stdin(self, monkeypatch, capsys):
        import io

        from repro.cli import main

        monkeypatch.setattr("sys.stdin", io.StringIO("london\n\nhanks 2001\n"))
        assert main(["serve", "--dataset", "imdb", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "serving dataset=imdb" in out
        assert "[london]" in out
        assert "[hanks 2001]" in out

    def test_serve_async_reads_stdin(self, monkeypatch, capsys):
        import io

        from repro.cli import main

        monkeypatch.setattr("sys.stdin", io.StringIO("london\n\nhanks 2001\n"))
        assert (
            main(["serve", "--dataset", "imdb", "--workers", "2", "--async"]) == 0
        )
        out = capsys.readouterr().out
        assert "frontend=asyncio" in out
        assert "[london]" in out
        assert "[hanks 2001]" in out

    def test_bench_serve_cli(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "bench-serve",
                    "--dataset",
                    "imdb",
                    "--clients",
                    "8",
                    "--queries",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "all verified against sequential execution" in out

    def test_bench_serve_cli_async(self, capsys):
        from repro.cli import main

        argv = ["bench-serve", "--dataset", "imdb", "--clients", "4",
                "--queries", "2", "--async"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "transport=asyncio" in out
        assert "all verified against sequential execution" in out
