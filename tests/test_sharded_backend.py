"""The sqlite-sharded backend: parity, scatter-gather, store lifecycle.

The contract under test: ``sqlite-sharded`` returns **byte-identical rows**
to ``sqlite`` for every query — relation reads, single paths, batched
execution, whole engine pipelines on both bundled datasets — while
physically splitting every table across N attached partition files,
executing one scatter statement per shard and attributing returned rows to
the shard that produced them.
"""

from __future__ import annotations

import pytest

from repro.datasets.imdb import build_imdb
from repro.db.backends import ShardedSQLiteBackend, create_backend
from repro.db.backends.sharded import shard_of_key
from repro.db.errors import DatabaseError, IntegrityError
from repro.engine import EngineConfig, QueryEngine, ResultCache
from tests.conftest import build_mini_db, mini_schema

QUERIES = ["hanks 2001", "london", "hanks", "2001", "stone hill", "summer"]


@pytest.fixture(autouse=True)
def fresh_process_cache():
    ResultCache.clear_process_cache()
    yield
    ResultCache.clear_process_cache()


def _result_rows(context):
    return [(r.score, r.interpretation_rank, r.row_uids()) for r in context.results]


def _mini_specs(db, query_text):
    engine = QueryEngine(db, config=EngineConfig(cache_results=False))
    ranked = engine.rank(query_text)
    return [interp.to_structured_query().path_spec() for interp, _p in ranked]


class TestShardedRelations:
    """Relation-level reads over partitions match the unsharded backend."""

    def test_scan_lookup_get_len_parity(self):
        db = build_mini_db("sqlite-sharded")
        ref = build_mini_db("sqlite")
        for table in ("actor", "movie", "acts"):
            relation, reference = db.relation(table), ref.relation(table)
            assert len(relation) == len(reference)
            assert [t.uid for t in relation] == [t.uid for t in reference]
            assert list(relation.keys()) == list(reference.keys())
        assert [t.key for t in db.relation("acts").lookup("actor_id", 1)] == [
            t.key for t in ref.relation("acts").lookup("actor_id", 1)
        ]
        assert db.relation("actor").get(2).get("name") == "colin hanks"
        assert db.relation("actor").get(99) is None

    def test_rows_actually_partition(self):
        """Rows land in the partition their key hashes to — and only there."""
        db = build_mini_db("sqlite-sharded")
        dialect = db.dialect
        for key in (1, 2, 3):
            shard = shard_of_key(key, db.shards)
            for candidate in range(db.shards):
                source = dialect.partition_source("actor", candidate)
                stored = db._conn.execute(
                    f"SELECT COUNT(*) FROM {source} WHERE id = ?", (key,)
                ).fetchone()[0]
                assert stored == (1 if candidate == shard else 0)

    def test_shard_routing_is_deterministic(self):
        assert shard_of_key("actor-key", 4) == shard_of_key("actor-key", 4)
        assert shard_of_key(True, 4) == shard_of_key(1, 4)  # normalized bools
        # SQLite compares numerics across int/real (3.0 IS 3), so routing
        # must collapse them too or get(3.0) would probe the wrong shard.
        assert shard_of_key(3.0, 4) == shard_of_key(3, 4)

    def test_get_with_numeric_key_aliases(self):
        """get() agrees with the other backends for ==-equal key spellings."""
        db = build_mini_db("sqlite-sharded")
        ref = build_mini_db("sqlite")
        for key in (3.0, True):
            assert (db.relation("actor").get(key) is None) == (
                ref.relation("actor").get(key) is None
            )
        assert db.relation("actor").get(3.0) == ref.relation("actor").get(3.0)

    def test_duplicate_key_raises(self):
        db = build_mini_db("sqlite-sharded")
        with pytest.raises(IntegrityError):
            db.insert("actor", {"id": 1, "name": "again"})

    def test_insert_after_build_stays_consistent(self):
        db = build_mini_db("sqlite-sharded")
        ref = build_mini_db("sqlite")
        for target in (db, ref):
            target.insert("actor", {"id": 9, "name": "hanks the third"})
        assert [t.uid for t in db.relation("actor")] == [
            t.uid for t in ref.relation("actor")
        ]
        assert db.index.stats_snapshot() == ref.index.stats_snapshot()
        assert db.selection_keys("actor", [("name", ("hanks",))]) == {1, 2, 9}


class TestShardedExecution:
    """Scatter-gather execution: same rows, per-shard statements."""

    @pytest.mark.parametrize("limit", [None, 1, 3, 0])
    def test_execute_path_matches_unsharded(self, limit):
        db = build_mini_db("sqlite-sharded")
        ref = build_mini_db("sqlite")
        for query_text in ("hanks 2001", "london", "hanks"):
            for spec in _mini_specs(ref, query_text):
                assert db.execute_path(*spec, limit=limit) == ref.execute_path(
                    *spec, limit=limit
                )

    def test_batched_matches_unsharded_with_shard_statements(self):
        db = build_mini_db("sqlite-sharded")
        ref = build_mini_db("sqlite")
        specs = _mini_specs(ref, "hanks 2001")
        assert len(specs) >= 2
        batched = db.execute_paths_batched(specs, limit=10)
        reference = ref.execute_paths_batched(specs, limit=10)
        assert batched.rows == reference.rows
        # One scatter statement per shard serves the whole batch.
        assert batched.statements == db.shards
        assert batched.batched_indexes == list(range(len(specs)))
        total = sum(len(rows) for rows in batched.rows)
        assert sum(batched.shard_rows.values()) == total

    def test_post_filter_fallback_matches_unsharded(self, monkeypatch):
        from repro.db.backends import sql as sql_module

        monkeypatch.setattr(sql_module, "MAX_INLINE_KEYS", 1)
        db = build_mini_db("sqlite-sharded")
        ref = build_mini_db("sqlite")
        specs = _mini_specs(ref, "hanks 2001")
        batched = db.execute_paths_batched(specs, limit=10)
        reference = ref.execute_paths_batched(specs, limit=10)
        assert batched.rows == reference.rows
        assert batched.fallbacks.keys() == reference.fallbacks.keys()
        # Every fallback spec scatters too: shards statements per spec.
        assert batched.statements == reference.statements * db.shards

    def test_provably_empty_spec_costs_no_statement(self):
        db = build_mini_db("sqlite-sharded")
        specs = _mini_specs(db, "hanks")
        path, edges, _selections = specs[0]
        empty_spec = (path, edges, {0: [("name", ("notaterm",))]})
        batched = db.execute_paths_batched([empty_spec], limit=10)
        assert batched.rows == [[]]
        assert batched.statements == 0


class TestShardedEngineParity:
    """Whole-pipeline row parity on both bundled datasets (acceptance)."""

    @pytest.mark.parametrize("dataset", ["imdb", "lyrics"])
    def test_sharded_engine_matches_sqlite_engine(self, dataset):
        unsharded = QueryEngine.for_dataset(
            dataset, backend="sqlite", config=EngineConfig(cache_results=False)
        )
        sharded = QueryEngine.for_dataset(
            dataset,
            backend="sqlite-sharded",
            shards=3,
            config=EngineConfig(cache_results=False),
        )
        for query_text in QUERIES:
            expected = unsharded.run(query_text, k=5)
            actual = sharded.run(query_text, k=5)
            assert _result_rows(actual) == _result_rows(expected), (
                dataset,
                query_text,
            )

    def test_shard_attribution_reaches_explain(self):
        engine = QueryEngine.for_dataset(
            "imdb",
            backend="sqlite-sharded",
            shards=3,
            config=EngineConfig(cache_results=False, streaming_execution=False),
        )
        context = engine.run("london", k=5, explain=True)
        stats = context.executor_statistics
        assert stats.rows_materialized > 0
        # The materializing gather delivers exactly the consumed rows.
        assert sum(stats.shard_rows.values()) == stats.rows_materialized
        text = "\n".join(context.explain_lines())
        assert "rows per shard: " in text
        assert "shard2:" in text  # all three shards contributed on "london"

    def test_shard_attribution_under_streaming(self):
        """Streamed gather: shard_rows counts *delivered* rows — everything
        the executor consumed plus at most two boundary-lookahead rows per
        batch (the executor's and the union stream's, both booked as
        short-circuited, never merged into results)."""
        engine = QueryEngine.for_dataset(
            "imdb",
            backend="sqlite-sharded",
            shards=3,
            config=EngineConfig(cache_results=False),
        )
        context = engine.run("london", k=5, explain=True)
        stats = context.executor_statistics
        assert stats.rows_materialized > 0
        delivered = sum(stats.shard_rows.values())
        assert stats.rows_materialized <= delivered
        assert delivered <= stats.rows_materialized + 2 * stats.batches
        # Every delivered-but-unconsumed row is accounted as short-circuited.
        assert delivered - stats.rows_materialized <= stats.rows_short_circuited
        text = "\n".join(context.explain_lines())
        assert "rows per shard: " in text
        assert "scatter slot #" in text  # the chooser names every consumed slot

    def test_statement_reduction_holds_under_sharding(self):
        """One scatter statement per shard per batch — still far below one
        statement per interpretation (pinned on the materializing batched
        strategy; the streaming strategy executes even fewer
        interpretations, asserted separately below)."""
        engine = QueryEngine.for_dataset(
            "imdb",
            backend="sqlite-sharded",
            shards=2,
            config=EngineConfig(cache_results=False, streaming_execution=False),
        )
        context = engine.run("london", k=5)
        stats = context.executor_statistics
        assert stats.interpretations_executed >= 3
        assert stats.batches == 1
        assert stats.sql_statements == 2  # == shards
        assert stats.sql_statements < stats.interpretations_executed

    def test_streaming_consumes_fewer_interpretations(self):
        """The streamed gather stops consuming at the TA bound: never more
        interpretations (or statements) than the materializing strategy,
        identical rows."""
        materializing = QueryEngine.for_dataset(
            "imdb",
            backend="sqlite-sharded",
            shards=2,
            config=EngineConfig(cache_results=False, streaming_execution=False),
        )
        streaming = QueryEngine.for_dataset(
            "imdb",
            backend="sqlite-sharded",
            shards=2,
            config=EngineConfig(cache_results=False),
        )
        for query_text in QUERIES:
            expected = materializing.run(query_text, k=5)
            actual = streaming.run(query_text, k=5)
            assert _result_rows(actual) == _result_rows(expected), query_text
            stats = actual.executor_statistics
            reference = expected.executor_statistics
            assert stats.interpretations_executed <= reference.interpretations_executed
            assert stats.sql_statements <= reference.sql_statements


class TestShardedStoreLifecycle:
    def test_partition_files_and_reuse(self, tmp_path):
        path = tmp_path / "imdb.sqlite"
        kwargs = dict(seed=7, n_movies=30, n_actors=18, n_directors=6, n_companies=5)
        built = build_imdb(backend="sqlite-sharded", db_path=path, shards=2, **kwargs)
        snapshot = built.require_index().stats_snapshot()
        reference_rows = build_imdb(**kwargs)
        query = (["movie"], [], {0: [("title", ("stone",))]})
        expected = reference_rows.execute_path(*query)
        assert built.execute_path(*query) == expected
        built.close()
        for shard in range(2):
            assert (tmp_path / f"imdb.sqlite.shard{shard}").exists()

        reopened = build_imdb(
            backend="sqlite-sharded", db_path=path, shards=2, **kwargs
        )
        assert reopened.require_index().stats_snapshot() == snapshot
        assert reopened.execute_path(*query) == expected
        reopened.close()

    def test_reuse_with_different_generation_params_refuses(self, tmp_path):
        path = tmp_path / "imdb.sqlite"
        kwargs = dict(seed=7, n_movies=30, n_actors=18, n_directors=6, n_companies=5)
        build_imdb(backend="sqlite-sharded", db_path=path, shards=2, **kwargs).close()
        with pytest.raises(ValueError, match="different IMDB instance"):
            build_imdb(
                backend="sqlite-sharded", db_path=path, shards=2,
                **{**kwargs, "n_movies": 31},
            )

    def test_shard_count_mismatch_fails_fast(self, tmp_path):
        path = tmp_path / "mini.sqlite"
        build_mini_db("sqlite-sharded", db_path=path).close()
        with pytest.raises(DatabaseError, match="built with 2 shard"):
            create_backend("sqlite-sharded", mini_schema(), path=path, shards=5)
        # The rejected open must not leave stray shard files behind.
        assert not (tmp_path / "mini.sqlite.shard4").exists()

    def test_missing_partition_file_fails_fast(self, tmp_path):
        """Only the catalog survived (e.g. a partial backup): refuse to open
        rather than silently serve the remaining half of the store."""
        path = tmp_path / "mini.sqlite"
        build_mini_db("sqlite-sharded", db_path=path).close()
        (tmp_path / "mini.sqlite.shard0").unlink()
        with pytest.raises(DatabaseError, match="missing partition file"):
            create_backend("sqlite-sharded", mini_schema(), path=path)
        # ...and the failed open must not have recreated it as an empty db.
        assert not (tmp_path / "mini.sqlite.shard0").exists()

    def test_backend_mixups_fail_fast(self, tmp_path):
        sharded_path = tmp_path / "sharded.sqlite"
        plain_path = tmp_path / "plain.sqlite"
        build_mini_db("sqlite-sharded", db_path=sharded_path).close()
        build_mini_db("sqlite", db_path=plain_path).close()
        with pytest.raises(DatabaseError, match="hash-partitioned"):
            create_backend("sqlite", mini_schema(), path=sharded_path)
        with pytest.raises(DatabaseError, match="plain .unsharded."):
            create_backend("sqlite-sharded", mini_schema(), path=plain_path)

    def test_shards_rejected_for_unsupporting_backends(self):
        with pytest.raises(ValueError, match="does not support sharding"):
            create_backend("memory", mini_schema(), shards=2)
        with pytest.raises(ValueError, match="does not support sharding"):
            create_backend("sqlite", mini_schema(), shards=2)
        instance = build_mini_db("memory")
        with pytest.raises(ValueError, match="existing backend instance"):
            create_backend(instance, mini_schema(), shards=2)

    def test_invalid_shard_counts(self):
        with pytest.raises(ValueError, match="shards must be positive"):
            ShardedSQLiteBackend(mini_schema(), shards=0)

    def test_single_shard_degenerates_gracefully(self):
        ref = build_mini_db("sqlite")
        one = _populated_sharded(shards=1)
        specs = _mini_specs(ref, "hanks 2001")
        batched = one.execute_paths_batched(specs, limit=10)
        assert batched.rows == ref.execute_paths_batched(specs, limit=10).rows
        assert batched.statements == 1

    def test_fingerprint_refuses_layout_params(self):
        from repro.datasets import _store

        with pytest.raises(ValueError, match="storage-layout"):
            _store.fingerprint("imdb", seed=7, shards=2)


def _populated_sharded(shards: int) -> ShardedSQLiteBackend:
    """The mini dataset on a sharded store with an explicit shard count."""
    db = ShardedSQLiteBackend(mini_schema(), shards=shards)
    reference = build_mini_db("memory")
    reference.copy_into(db)
    db.build_indexes()
    return db
