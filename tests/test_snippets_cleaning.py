"""Unit tests for repro.core.snippets and repro.core.cleaning."""

import pytest

from repro.core.cleaning import Correction, QueryCleaner, edit_distance
from repro.core.keywords import KeywordQuery
from repro.core.snippets import cluster_results, make_snippet

HANKS_2001 = KeywordQuery.from_terms(["hanks", "2001"])


@pytest.fixture
def results(mini_db):
    e1 = mini_db.schema.join_edges("actor", "acts")[0]
    e2 = mini_db.schema.join_edges("acts", "movie")[0]
    return mini_db.execute_path(["actor", "acts", "movie"], [e1, e2])


class TestSnippets:
    def test_highlights_keywords(self, results):
        row = next(r for r in results if r[2].key == 2)
        snippet = make_snippet(HANKS_2001, row)
        assert "**hanks**" in snippet.text
        assert "**2001**" in snippet.text

    def test_matched_attributes_recorded(self, results):
        row = next(r for r in results if r[2].key == 2)
        snippet = make_snippet(HANKS_2001, row)
        assert ("actor", "name") in snippet.matched_attributes
        assert ("movie", "year") in snippet.matched_attributes

    def test_non_matching_attributes_dropped(self, results):
        row = next(r for r in results if r[2].key == 2)
        snippet = make_snippet(HANKS_2001, row)
        assert "role" not in snippet.text  # acts.role has no keyword

    def test_truncation(self, mini_db):
        mini_db.insert(
            "movie", {"id": 90, "title": "hanks " + "x" * 100, "year": "1999"}
        )
        row = (mini_db.relation("movie").get(90),)
        snippet = make_snippet(HANKS_2001, row, max_value_length=20)
        for fragment in snippet.text.split(", "):
            if fragment.startswith("title:"):
                assert fragment.endswith("...")

    def test_no_match_fallback(self, results):
        query = KeywordQuery.from_terms(["zzz"])
        snippet = make_snippet(query, results[0])
        assert snippet.text  # still shows something
        assert snippet.matched_attributes == ()

    def test_custom_marker(self, results):
        row = next(r for r in results if r[2].key == 2)
        snippet = make_snippet(HANKS_2001, row, marker="__")
        assert "__hanks__" in snippet.text


class TestClustering:
    def test_clusters_by_match_signature(self, results):
        clusters = cluster_results(HANKS_2001, results)
        assert clusters
        signatures = [c.signature for c in clusters]
        assert len(signatures) == len(set(signatures))

    def test_every_result_clustered(self, results):
        clusters = cluster_results(HANKS_2001, results)
        assert sum(len(c) for c in clusters) == len(results)

    def test_biggest_cluster_first(self, results):
        clusters = cluster_results(HANKS_2001, results)
        sizes = [len(c) for c in clusters]
        assert sizes == sorted(sizes, reverse=True)

    def test_cluster_labels(self, results):
        clusters = cluster_results(HANKS_2001, results)
        for cluster in clusters:
            if cluster.signature:
                assert "." in cluster.label()

    def test_empty_results(self):
        assert cluster_results(HANKS_2001, []) == []


class TestEditDistance:
    def test_identical(self):
        assert edit_distance("hanks", "hanks") == 0

    def test_substitution(self):
        assert edit_distance("hanks", "hanka") == 1

    def test_insertion_deletion(self):
        assert edit_distance("hanks", "hank") == 1
        assert edit_distance("hanks", "hankss") == 1

    def test_transposed_is_two(self):
        assert edit_distance("hanks", "hakns") == 2

    def test_cap_exceeded(self):
        assert edit_distance("a", "zzzzzzzz", cap=2) > 2

    def test_symmetric(self):
        assert edit_distance("terminal", "termnal") == edit_distance("termnal", "terminal")


class TestQueryCleaner:
    def test_in_vocabulary_untouched(self, mini_db):
        cleaner = QueryCleaner(mini_db.require_index())
        cleaned, corrections = cleaner.clean(HANKS_2001)
        assert cleaned is HANKS_2001
        assert corrections == []

    def test_misspelling_repaired(self, mini_db):
        cleaner = QueryCleaner(mini_db.require_index())
        cleaned, corrections = cleaner.clean(KeywordQuery.from_terms(["hankz", "2001"]))
        assert cleaned.terms == ("hanks", "2001")
        assert len(corrections) == 1
        assert corrections[0].replacement == "hanks"
        assert corrections[0].distance == 1

    def test_frequency_breaks_ties(self, mini_db):
        """Among equal-distance candidates, the more frequent term wins."""
        cleaner = QueryCleaner(mini_db.require_index())
        suggestions = cleaner.suggestions(KeywordQuery.from_terms(["hanka"]).keywords[0])
        assert suggestions
        assert suggestions[0].replacement == "hanks"

    def test_unrepairable_kept(self, mini_db):
        cleaner = QueryCleaner(mini_db.require_index(), max_distance=1)
        cleaned, corrections = cleaner.clean(KeywordQuery.from_terms(["qqqqqqqq"]))
        assert cleaned.terms == ("qqqqqqqq",)
        assert corrections == []

    def test_max_candidates(self, mini_db):
        cleaner = QueryCleaner(mini_db.require_index(), max_candidates=2)
        suggestions = cleaner.suggestions(KeywordQuery.from_terms(["hank"]).keywords[0])
        assert len(suggestions) <= 2

    def test_cleaned_query_resolves(self, mini_db, mini_generator):
        """End to end: a misspelled query becomes answerable after cleaning."""
        cleaner = QueryCleaner(mini_db.require_index())
        broken = KeywordQuery.from_terms(["hankz", "2001"])
        assert len(mini_generator.effective_keywords(broken)) == 1
        cleaned, _ = cleaner.clean(broken)
        assert len(mini_generator.effective_keywords(cleaned)) == 2
