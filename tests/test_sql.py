"""Unit tests for repro.db.sql (SQL rendering)."""

import pytest

from repro.db.sql import render_sql


def _actor_movie(db):
    e1 = db.schema.join_edges("actor", "acts")[0]
    e2 = db.schema.join_edges("acts", "movie")[0]
    return ["actor", "acts", "movie"], [e1, e2]


class TestRenderSql:
    def test_single_table(self, mini_db):
        sql = render_sql(["actor"], [], {0: [("name", ("hanks",))]})
        assert "FROM actor" in sql
        assert "LIKE '%hanks%'" in sql

    def test_join_clause(self, mini_db):
        path, edges = _actor_movie(mini_db)
        sql = render_sql(path, edges)
        assert sql.count("JOIN") == 2
        assert "t0_actor" in sql and "t2_movie" in sql

    def test_join_condition_uses_fk(self, mini_db):
        path, edges = _actor_movie(mini_db)
        sql = render_sql(path, edges)
        assert "actor_id" in sql and "movie_id" in sql

    def test_where_with_multiple_terms(self, mini_db):
        path, edges = _actor_movie(mini_db)
        sql = render_sql(path, edges, {0: [("name", ("tom", "hanks"))]})
        assert sql.count("LIKE") == 2
        assert "AND" in sql

    def test_quote_escaping(self, mini_db):
        sql = render_sql(["actor"], [], {0: [("name", ("o'brien",))]})
        assert "o''brien" in sql

    def test_arity_mismatch(self, mini_db):
        path, edges = _actor_movie(mini_db)
        with pytest.raises(ValueError):
            render_sql(path, edges[:1])

    def test_no_where_without_selections(self, mini_db):
        sql = render_sql(["actor"], [])
        assert "WHERE" not in sql

    def test_aliases_disambiguate_self_joins(self, mini_db):
        e1 = mini_db.schema.join_edges("actor", "acts")[0]
        e2 = mini_db.schema.join_edges("acts", "movie")[0]
        sql = render_sql(["actor", "acts", "movie", "acts", "actor"], [e1, e2, e2, e1])
        assert "t0_actor" in sql and "t4_actor" in sql
