"""Planner statistics: collection, incremental maintenance, estimation,
persistence.

The catalog numbers are pinned against ``build_mini_db``'s exactly-known
content (3 actors, 3 movies, 4 acts rows); the persistence tests prove the
SQLite backends reload ``_repro_stats_*`` side tables on cold open *without
rescanning* (collection is monkeypatched to explode), recollect on a
fingerprint mismatch, and that the sharded layout aggregates per-shard rows
into the same catalog an unsharded store collects.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.db.backends import create_backend
from repro.db.backends.sql import plan_path
from repro.db.stats import (
    AttributeStatistics,
    CardinalityEstimator,
    StatisticsCatalog,
    TableStatistics,
    tracked_attributes,
)
from tests.conftest import build_mini_db, mini_schema


def _fk(schema, source_attr):
    return next(fk for fk in schema.foreign_keys if fk.source_attr == source_attr)


class TestTrackedAttributes:
    def test_primary_keys_and_fk_endpoints(self):
        schema = mini_schema()
        assert tracked_attributes(schema, "actor") == ("id",)
        assert tracked_attributes(schema, "movie") == ("id",)
        assert tracked_attributes(schema, "acts") == ("actor_id", "id", "movie_id")

    def test_textual_attributes_not_tracked(self):
        schema = mini_schema()
        assert "name" not in tracked_attributes(schema, "actor")
        assert "title" not in tracked_attributes(schema, "movie")


class TestCollection:
    def test_exact_counts_on_mini_db(self, mini_db):
        catalog = mini_db.statistics_catalog()
        assert catalog.rows("actor") == 3
        assert catalog.rows("movie") == 3
        assert catalog.rows("acts") == 4

    def test_exact_distincts_and_max_frequency(self, mini_db):
        catalog = mini_db.statistics_catalog()
        assert catalog.distinct("actor", "id") == 3
        assert catalog.distinct("movie", "id") == 3
        assert catalog.distinct("acts", "id") == 4
        # acts.actor_id = [1, 1, 2, 3]; acts.movie_id = [1, 2, 2, 3]
        assert catalog.distinct("acts", "actor_id") == 3
        assert catalog.distinct("acts", "movie_id") == 3
        attrs = {
            (tbl, attr): (distinct, max_freq)
            for tbl, attr, distinct, max_freq in catalog.iter_attributes()
        }
        assert attrs[("acts", "actor_id")] == (3, 2)
        assert attrs[("acts", "movie_id")] == (3, 2)
        assert attrs[("actor", "id")] == (3, 1)

    def test_iter_rows_in_schema_order(self, mini_db):
        catalog = mini_db.statistics_catalog()
        assert list(catalog.iter_rows()) == [("actor", 3), ("movie", 3), ("acts", 4)]

    def test_collected_automatically_at_build_time(self):
        db = build_mini_db()
        # build_indexes already ran inside build_mini_db: the catalog exists
        # without anyone asking for a collection.
        assert db.statistics_catalog(collect=False) is not None

    def test_collect_false_reports_absence(self):
        db = create_backend("memory", mini_schema())
        db.insert("actor", {"id": 1, "name": "solo"})
        assert db.statistics_catalog(collect=False) is None


class TestIncrementalMaintenance:
    def test_insert_after_build_equals_fresh_collect(self, mini_db):
        mini_db.insert("actor", {"id": 4, "name": "grace kelly"})
        mini_db.insert("movie", {"id": 4, "title": "rear window", "year": "1954"})
        mini_db.insert("acts", {"id": 5, "actor_id": 4, "movie_id": 4, "role": "lisa"})
        # A repeated FK value: distinct must NOT grow, max_frequency must.
        mini_db.insert("acts", {"id": 6, "actor_id": 1, "movie_id": 4, "role": "cameo"})
        incremental = mini_db.statistics_catalog(collect=False).export_state()
        fresh = StatisticsCatalog.collect(mini_db).export_state()
        assert incremental == fresh

    def test_repeated_value_tracks_max_frequency(self, mini_db):
        catalog = mini_db.statistics_catalog()
        mini_db.insert("acts", {"id": 5, "actor_id": 1, "movie_id": 3, "role": "extra"})
        mini_db.insert("acts", {"id": 6, "actor_id": 1, "movie_id": 1, "role": "extra"})
        stats = catalog.tables["acts"].attributes["actor_id"]
        assert stats.distinct == 3  # actor_id 1 was already known
        assert stats.max_frequency == 4  # [1, 1, 2, 3] + two more 1s

    def test_export_restore_round_trip(self, mini_db):
        catalog = mini_db.statistics_catalog()
        state = catalog.export_state()
        restored = StatisticsCatalog.restore(mini_db.schema, state)
        assert restored.export_state() == state
        assert restored.rows("acts") == 4
        assert restored.distinct("acts", "movie_id") == 3


class TestEstimator:
    def test_single_table_unfiltered_is_row_count(self, mini_db):
        estimator = mini_db.cardinality_estimator()
        plan = plan_path(["actor"], [], {}, None)
        assert estimator.estimate(plan) == pytest.approx(3.0)

    def test_filtered_slot_is_exact_key_count(self, mini_db):
        estimator = mini_db.cardinality_estimator()
        plan = plan_path(["actor"], [], {0: {1, 2}}, None)
        assert estimator.estimate(plan) == pytest.approx(2.0)

    def test_join_uses_independence_formula(self, mini_db):
        estimator = mini_db.cardinality_estimator()
        fk = _fk(mini_db.schema, "actor_id")
        plan = plan_path(["actor", "acts"], [fk], {}, None)
        # |actor| * |acts| / max(V(actor.id), V(acts.actor_id)) = 3*4/3
        assert estimator.estimate(plan) == pytest.approx(4.0)

    def test_filter_composes_through_join(self, mini_db):
        estimator = mini_db.cardinality_estimator()
        fk = _fk(mini_db.schema, "actor_id")
        plan = plan_path(["actor", "acts"], [fk], {0: {1}}, None)
        assert estimator.estimate(plan) == pytest.approx(4.0 / 3.0)

    def test_limit_clamps_the_estimate(self, mini_db):
        estimator = mini_db.cardinality_estimator()
        plan = plan_path(["acts"], [], {}, 2)
        assert estimator.estimate(plan) == pytest.approx(2.0)

    def test_missing_table_statistics_mean_no_estimate(self, mini_db):
        catalog = StatisticsCatalog(mini_db.schema)  # empty: no tables collected
        estimator = CardinalityEstimator(catalog)
        plan = plan_path(["actor"], [], {}, None)
        assert estimator.slot_cardinalities(plan) is None
        assert estimator.estimate(plan) is None

    def test_zero_distinct_denominator_means_no_estimate(self, mini_db):
        catalog = StatisticsCatalog(mini_db.schema)
        catalog.tables["actor"] = TableStatistics(
            rows=3, attributes={"id": AttributeStatistics(distinct=0)}
        )
        catalog.tables["acts"] = TableStatistics(
            rows=4, attributes={"actor_id": AttributeStatistics(distinct=0)}
        )
        estimator = CardinalityEstimator(catalog)
        fk = _fk(mini_db.schema, "actor_id")
        plan = plan_path(["actor", "acts"], [fk], {}, None)
        assert estimator.estimate(plan) is None

    def test_filtered_slot_needs_no_table_statistics(self, mini_db):
        # The cheap fallback the scatter chooser relies on: a filtered slot
        # estimates exactly even when its table was never collected.
        catalog = StatisticsCatalog(mini_db.schema)
        estimator = CardinalityEstimator(catalog)
        plan = plan_path(["actor"], [], {0: {1, 3}}, None)
        assert estimator.estimate(plan) == pytest.approx(2.0)


class TestCalibration:
    def test_observe_moves_calibration_toward_actual(self, mini_db):
        estimator = mini_db.cardinality_estimator()
        assert estimator.calibration == 1.0
        estimator.observe(4.0, 8)  # actual 2x the estimate
        assert estimator.calibration == pytest.approx(1.5)  # EWMA(1.0 -> 2.0)
        assert estimator.observations == 1

    def test_calibration_scales_estimates(self, mini_db):
        estimator = mini_db.cardinality_estimator()
        plan = plan_path(["actor"], [], {}, None)
        before = estimator.estimate(plan)
        estimator.observe(4.0, 8)
        assert estimator.estimate(plan) == pytest.approx(before * 1.5)

    def test_calibration_is_clamped(self, mini_db):
        estimator = mini_db.cardinality_estimator()
        for _ in range(50):
            estimator.observe(1.0, 10_000)
        assert estimator.calibration <= 16.0
        for _ in range(50):
            estimator.observe(10_000.0, 0)
        assert estimator.calibration >= 1.0 / 16.0

    def test_non_positive_estimate_is_ignored(self, mini_db):
        estimator = mini_db.cardinality_estimator()
        estimator.observe(0.0, 100)
        assert estimator.calibration == 1.0
        assert estimator.observations == 0

    def test_engine_feedback_reaches_the_estimator(self, mini_db):
        mini_db.statistics_catalog()
        mini_db.observe_estimate(2.0, 4)
        assert mini_db.cardinality_estimator().observations == 1


class TestEstimatedPathRows:
    def test_gated_by_cost_planning(self, mini_db):
        assert mini_db.estimated_path_rows(["actor"], []) == pytest.approx(3.0)
        mini_db.cost_planning = False
        assert mini_db.estimated_path_rows(["actor"], []) is None

    def test_selection_resolves_before_estimating(self, mini_db):
        estimate = mini_db.estimated_path_rows(
            ["actor"], [], {0: [("name", ("hanks",))]}
        )
        assert estimate == pytest.approx(2.0)  # tom hanks + colin hanks

    def test_provably_empty_spec_estimates_zero(self, mini_db):
        estimate = mini_db.estimated_path_rows(
            ["actor"], [], {0: [("name", ("zzzz",))]}
        )
        assert estimate == 0.0

    def test_invalid_spec_is_a_gap_not_an_error(self, mini_db):
        assert mini_db.estimated_path_rows(["actor"], [object()]) is None


def _raise_on_collect(monkeypatch):
    def boom(cls, backend):  # pragma: no cover - the assertion is the point
        raise AssertionError("statistics were rescanned on a warm reopen")

    monkeypatch.setattr(StatisticsCatalog, "collect", classmethod(boom))


@pytest.mark.parametrize("backend_name", ["sqlite", "sqlite-sharded"])
class TestPersistence:
    def test_reopen_reloads_without_rescanning(
        self, backend_name, tmp_path, monkeypatch
    ):
        db_path = tmp_path / "stats.sqlite"
        db = build_mini_db(backend_name, db_path=db_path)
        expected = db.statistics_catalog(collect=False).export_state()
        db.close()

        _raise_on_collect(monkeypatch)
        reopened = create_backend(backend_name, mini_schema(), path=db_path)
        reopened.require_index()
        catalog = reopened.statistics_catalog(collect=False)
        assert catalog is not None
        assert catalog.export_state() == expected
        assert (
            reopened.persisted_stats_fingerprint()
            == reopened.content_fingerprint()
        )
        reopened.close()

    def test_fingerprint_mismatch_triggers_recollection(
        self, backend_name, tmp_path
    ):
        db_path = tmp_path / "stats.sqlite"
        db = build_mini_db(backend_name, db_path=db_path)
        expected = db.statistics_catalog(collect=False).export_state()
        db.close()

        with sqlite3.connect(db_path) as conn:  # corrupt the stored fingerprint
            conn.execute("UPDATE _repro_stats_meta SET value = 'stale'")
            conn.commit()

        reopened = create_backend(backend_name, mini_schema(), path=db_path)
        reopened.require_index()
        catalog = reopened.statistics_catalog(collect=False)
        assert catalog is not None
        assert catalog.export_state() == expected  # recollected from the rows
        # ... and re-persisted under the current fingerprint.
        assert (
            reopened.persisted_stats_fingerprint()
            == reopened.content_fingerprint()
        )
        reopened.close()

    def test_insert_after_build_persists_updated_stats(
        self, backend_name, tmp_path, monkeypatch
    ):
        db_path = tmp_path / "stats.sqlite"
        db = build_mini_db(backend_name, db_path=db_path)
        db.insert("acts", {"id": 5, "actor_id": 1, "movie_id": 3, "role": "extra"})
        expected = db.statistics_catalog(collect=False).export_state()
        db.close()

        _raise_on_collect(monkeypatch)
        reopened = create_backend(backend_name, mini_schema(), path=db_path)
        reopened.require_index()
        catalog = reopened.statistics_catalog(collect=False)
        assert catalog is not None
        assert catalog.export_state() == expected
        assert catalog.rows("acts") == 5
        reopened.close()


class TestShardedAggregation:
    def test_sharded_catalog_equals_unsharded(self, tmp_path):
        memory = build_mini_db()
        sharded = build_mini_db("sqlite-sharded", db_path=tmp_path / "sh.sqlite")
        assert (
            sharded.statistics_catalog().export_state()
            == memory.statistics_catalog().export_state()
        )
        sharded.close()
