"""Streaming execution: cursor parity, TA consumption, k-way merge edges.

The contract under test, layer by layer:

* ``StorageBackend.execute_paths_streamed`` (native SQLite cursors, the
  sharded k-way merge, and the generic materializing fallback) streams
  **byte-identical** rows to the list-returning batched API, on the mini
  store and on both bundled datasets (the acceptance pin).
* Streams abandoned mid-iteration release their cursors: the backend stays
  fully usable, sharded reader connections do not leak, and close() is
  idempotent.
* ``merge_shard_streams`` is a stable k-way merge: ORDER BY ties across
  shards resolve to the lower shard, empty partitions are transparent.
* The streaming ``TopKExecutor`` returns exactly the sequential strategy's
  rows while *consuming* strictly less from the backend on early-stopping
  queries, and counts only consumed interpretations as executed/missed.
"""

from __future__ import annotations

import pytest

from repro.core.topk import TopKExecutor
from repro.db.backends import sql as sqlc
from repro.db.backends.base import RowStream, StreamedExecution
from repro.db.backends.sharded import ShardedSQLiteBackend, merge_shard_streams
from repro.engine import EngineConfig, QueryEngine, ResultCache
from tests.conftest import build_mini_db, mini_schema

QUERIES = ["hanks 2001", "london", "hanks", "2001", "stone hill", "summer"]


@pytest.fixture(autouse=True)
def fresh_process_cache():
    ResultCache.clear_process_cache()
    yield
    ResultCache.clear_process_cache()


def _specs(db, query_text, n=None):
    engine = QueryEngine(db, config=EngineConfig(cache_results=False))
    ranked = engine.rank(query_text)
    return [interp.to_structured_query().path_spec() for interp, _p in ranked[:n]]


def _drain(execution: StreamedExecution, n_specs: int):
    grouped: list[list] = [[] for _ in range(n_specs)]
    for index, network in execution.stream:
        grouped[index].append(network)
    return grouped


def _result_rows(context):
    return [(r.score, r.interpretation_rank, r.row_uids()) for r in context.results]


class TestBackendStreamContract:
    """execute_paths_streamed parity with execute_paths_batched."""

    @pytest.mark.parametrize("backend", ["memory", "sqlite", "sqlite-sharded"])
    @pytest.mark.parametrize("limit", [None, 1, 3, 0])
    def test_drained_stream_equals_batched(self, backend, limit):
        db = build_mini_db(backend)
        for query_text in ("hanks 2001", "london", "hanks"):
            specs = _specs(db, query_text)
            expected = db.execute_paths_batched(specs, limit=limit)
            execution = db.execute_paths_streamed(specs, limit=limit)
            assert _drain(execution, len(specs)) == expected.rows, query_text
            assert execution.statements == expected.statements
            assert execution.batched_indexes == expected.batched_indexes
            assert execution.fallbacks == expected.fallbacks

    @pytest.mark.parametrize("dataset", ["imdb", "lyrics"])
    @pytest.mark.parametrize("backend", ["sqlite", "sqlite-sharded"])
    def test_acceptance_streamed_parity_on_datasets(self, dataset, backend):
        """The acceptance pin: streamed == list-based rows, byte-identical,
        on both SQL backends and both bundled datasets."""
        engine = QueryEngine.for_dataset(
            dataset, backend=backend, config=EngineConfig(cache_results=False)
        )
        db = engine.backend
        for query_text in QUERIES:
            ranked = engine.rank(query_text)
            specs = [i.to_structured_query().path_spec() for i, _p in ranked]
            if not specs:
                continue
            expected = db.execute_paths_batched(specs, limit=100)
            execution = db.execute_paths_streamed(specs, limit=100)
            assert _drain(execution, len(specs)) == expected.rows, (
                dataset,
                backend,
                query_text,
            )

    def test_statements_open_lazily(self):
        """An unconsumed stream costs zero statements (the warm-run path)."""
        db = build_mini_db("sqlite")
        specs = _specs(db, "hanks 2001")
        execution = db.execute_paths_streamed(specs, limit=10)
        execution.stream.close()
        assert execution.statements == 0
        # ...while the batched call on the same specs costs one.
        assert db.execute_paths_batched(specs, limit=10).statements == 1

    def test_fallback_counts_short_circuited_rows(self):
        """The generic fallback reports exactly the unconsumed rows."""
        db = build_mini_db("memory")
        specs = _specs(db, "hanks 2001")
        total = sum(
            len(rows) for rows in db.execute_paths_batched(specs, limit=10).rows
        )
        assert total >= 2
        execution = db.execute_paths_streamed(specs, limit=10)
        next(execution.stream)
        execution.stream.close()
        assert execution.stream.rows_delivered == 1
        assert execution.rows_short_circuited == total - 1

    def test_post_filter_fallback_streams_identically(self, monkeypatch):
        """Solo fallback plans (inline cap overflow) stream like they batch."""
        monkeypatch.setattr(sqlc, "MAX_INLINE_KEYS", 1)
        for backend in ("sqlite", "sqlite-sharded"):
            db = build_mini_db(backend)
            specs = _specs(db, "hanks 2001")
            expected = db.execute_paths_batched(specs, limit=10)
            execution = db.execute_paths_streamed(specs, limit=10)
            assert _drain(execution, len(specs)) == expected.rows
            assert execution.fallbacks == expected.fallbacks


class TestStreamAbandonment:
    """Closing a stream mid-iteration releases cursors, leaks nothing."""

    @pytest.mark.parametrize("backend", ["sqlite", "sqlite-sharded"])
    def test_abandoned_stream_leaves_backend_usable(self, backend, tmp_path):
        db = build_mini_db(backend, db_path=tmp_path / "store.sqlite")
        specs = _specs(db, "hanks 2001")
        execution = db.execute_paths_streamed(specs, limit=10)
        next(execution.stream)  # cursors are open now
        execution.stream.close()
        execution.stream.close()  # idempotent
        # The store accepts reads and writes immediately after abandonment —
        # a leaked read cursor would wedge the commit path instead.
        assert db.execute_paths_batched(specs, limit=10).rows
        db.insert("actor", {"id": 9, "name": "late arrival"})
        db.close()

    def test_sharded_readers_do_not_leak(self, tmp_path):
        db = build_mini_db("sqlite-sharded", db_path=tmp_path / "store.sqlite")
        specs = _specs(db, "hanks 2001")
        for _ in range(5):
            execution = db.execute_paths_streamed(specs, limit=10)
            next(execution.stream)
            execution.stream.close()
        # Reader connections come from the bounded pool: every abandoned
        # stream returned its leases, so the pool never opened more than its
        # capacity, and nothing is leased after the last close.
        pool = db._read_pool
        assert pool is not None
        assert pool._opened <= db._read_pool_capacity()
        assert pool._active == 0
        db.close()
        assert db._read_pool is None

    def test_stream_is_a_context_manager(self):
        db = build_mini_db("sqlite")
        specs = _specs(db, "london", n=1)
        execution = db.execute_paths_streamed(specs, limit=10)
        with execution.stream as stream:
            first = next(stream)
        assert first[0] == 0
        assert isinstance(execution.stream, RowStream)


class TestKWayMerge:
    """merge_shard_streams on synthetic sorted streams."""

    def test_ties_resolve_to_the_lower_shard(self):
        streams = [
            [(1, "s0-a"), (2, "s0-b")],
            [(1, "s1-a"), (2, "s1-b")],
            [(2, "s2-a")],
        ]
        merged = list(merge_shard_streams(streams, key_width=1))
        assert [(key, shard) for key, shard, _row in merged] == [
            ((1,), 0),
            ((1,), 1),
            ((2,), 0),
            ((2,), 1),
            ((2,), 2),
        ]

    def test_empty_streams_are_transparent(self):
        streams = [[], [(1, "a"), (3, "c")], [], [(2, "b")]]
        merged = [row for _key, _shard, row in merge_shard_streams(streams, 1)]
        assert merged == [(1, "a"), (2, "b"), (3, "c")]
        assert list(merge_shard_streams([[], []], 1)) == []

    def test_within_shard_order_is_preserved(self):
        streams = [[(1, "x"), (1, "y"), (1, "z")], [(1, "p"), (1, "q")]]
        merged = [row for _key, _shard, row in merge_shard_streams(streams, 1)]
        assert merged == [(1, "x"), (1, "y"), (1, "z"), (1, "p"), (1, "q")]

    def test_multi_column_keys_with_null_padding(self):
        # Trailing None padding (the union statement's __o columns) only ever
        # compares against None within one spec — never across types.
        streams = [[((5, "a", None), "first")], [((5, "a", None), "second")]]
        merged = list(merge_shard_streams(streams, key_width=1))
        assert [row for _key, _shard, row in merged] == [
            ((5, "a", None), "first"),
            ((5, "a", None), "second"),
        ]


class TestEmptyPartitions:
    """Stores whose partition files hold no rows of some table."""

    def test_streamed_parity_with_empty_partitions(self):
        from repro.db.backends.sharded import shard_of_key

        shards = 4
        db = ShardedSQLiteBackend(mini_schema(), shards=shards)
        reference = build_mini_db("memory")
        reference.copy_into(db)
        db.build_indexes()
        # The mini store's 3 actor keys cannot cover 4 partitions: at least
        # one shard holds no actor rows, so the merge sees empty streams.
        occupied = {shard_of_key(key, shards) for key in (1, 2, 3)}
        assert len(occupied) < shards
        for query_text in ("hanks 2001", "london", "hanks"):
            specs = _specs(reference, query_text)
            expected = reference.execute_paths_batched(specs, limit=10)
            execution = db.execute_paths_streamed(specs, limit=10)
            assert _drain(execution, len(specs)) == expected.rows, query_text
        db.close()


class TestStreamingExecutor:
    """TopKExecutor(streaming=True): same rows, less consumption."""

    @pytest.mark.parametrize("backend", ["memory", "sqlite", "sqlite-sharded"])
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_streaming_equals_sequential(self, backend, k):
        db = build_mini_db(backend)
        engine = QueryEngine(db, config=EngineConfig(cache_results=False))
        for query_text in QUERIES:
            ranked = engine.rank(query_text)
            sequential = TopKExecutor(db, per_query_limit=100)
            streamed = TopKExecutor(
                db, per_query_limit=100, batch_size=4, streaming=True
            )
            expected = sequential.execute(ranked, k=k)
            actual = streamed.execute(ranked, k=k)
            assert [
                (r.score, r.interpretation_rank, r.row_uids()) for r in actual
            ] == [
                (r.score, r.interpretation_rank, r.row_uids()) for r in expected
            ], (backend, k, query_text)

    def test_streaming_consumes_fewer_rows_on_k1(self):
        """k=1: the second interpretation's rows are never fetched."""
        db = build_mini_db("sqlite")
        engine = QueryEngine(db, config=EngineConfig(cache_results=False))
        ranked = engine.rank("hanks 2001")
        assert len(ranked) >= 2
        materializing = TopKExecutor(db, per_query_limit=100, batch_size=16)
        streamed = TopKExecutor(
            db, per_query_limit=100, batch_size=16, streaming=True
        )
        expected = materializing.execute(ranked, k=1)
        actual = streamed.execute(ranked, k=1)
        assert [r.row_uids() for r in actual] == [r.row_uids() for r in expected]
        stats = streamed.statistics
        assert stats.rows_streamed < materializing.statistics.rows_materialized
        assert stats.interpretations_executed == 1  # never reached rank 2
        assert stats.cache_misses == 1  # unconsumed interps are not misses
        assert stats.stopped_early

    def test_warm_run_opens_no_statement(self, tmp_path):
        """Fully cache-served queries never open the stream."""
        engine = QueryEngine.for_dataset(
            "imdb", backend="sqlite", db_path=tmp_path / "imdb.sqlite"
        )
        cold = engine.run("london", k=5)
        assert cold.executor_statistics.interpretations_executed > 0
        warm = engine.run("london", k=5)
        stats = warm.executor_statistics
        assert stats.interpretations_executed == 0
        assert stats.sql_statements == 0
        assert stats.cache_misses == 0
        assert stats.cache_hits > 0
        assert [r.row_uids() for r in warm.results] == [
            r.row_uids() for r in cold.results
        ]
        engine.backend.close()

    def test_adaptive_first_batch_shrinks_with_selectivity(self):
        engine = QueryEngine.for_dataset(
            "imdb",
            backend="sqlite",
            # Cost planning off: only the selectivity EWMA sizes batches, so
            # the legacy bounds are pinned exactly.
            config=EngineConfig(cache_results=False, cost_based_planning=False),
        )
        first = engine.run("london", k=5)
        # No observations yet: the legacy max(2, min(batch, k)) bound.
        assert first.executor_statistics.first_batch_size == 5
        assert engine.observed_selectivity is not None
        assert engine.observed_selectivity >= 1
        second = engine.run("london", k=1)
        # One row suffices and interpretations yield >= 1 row on average.
        assert second.executor_statistics.first_batch_size == 1

    def test_cost_estimates_only_shrink_the_first_batch(self):
        """Cardinality estimates may shrink the first batch below the legacy
        bound — never grow it — and the returned rows stay identical."""
        cost = QueryEngine.for_dataset(
            "imdb", backend="sqlite", config=EngineConfig(cache_results=False)
        )
        legacy = QueryEngine.for_dataset(
            "imdb",
            backend="sqlite",
            config=EngineConfig(cache_results=False, cost_based_planning=False),
        )
        for query in ("london", "hanks"):
            with_cost = cost.run(query, k=5)
            baseline = legacy.run(query, k=5)
            assert (
                with_cost.executor_statistics.first_batch_size
                <= baseline.executor_statistics.first_batch_size
            )
            assert [r.row_uids() for r in with_cost.results] == [
                r.row_uids() for r in baseline.results
            ]

    def test_explain_surfaces_streaming_counters(self):
        engine = QueryEngine.for_dataset(
            "imdb", backend="sqlite", config=EngineConfig(cache_results=False)
        )
        context = engine.run("london", k=5, explain=True)
        stats = context.executor_statistics
        assert stats.rows_streamed == stats.rows_materialized > 0
        text = "\n".join(context.explain_lines())
        assert f"streaming: first batch {stats.first_batch_size}" in text
        assert f"{stats.rows_streamed} row(s) streamed" in text
        assert "short-circuited" in text

    def test_streaming_fills_the_result_cache(self):
        db = build_mini_db("sqlite")
        from repro.engine import ResultCache as Cache

        cache = Cache(db)
        engine = QueryEngine(db, cache=cache)
        ranked = engine.rank("hanks 2001")
        first = TopKExecutor(
            db, per_query_limit=100, cache=cache, batch_size=16, streaming=True
        )
        expected = first.execute(ranked, k=5)
        second = TopKExecutor(
            db, per_query_limit=100, cache=cache, batch_size=16, streaming=True
        )
        actual = second.execute(ranked, k=5)
        assert second.statistics.interpretations_executed == 0
        assert second.statistics.sql_statements == 0
        assert second.statistics.cache_hits > 0
        assert [r.row_uids() for r in actual] == [r.row_uids() for r in expected]


class TestWALMode:
    """File-backed stores run WAL (the serving follow-on, now landed).

    WAL lets readers in *other* connections/processes proceed while the
    streaming cursor's long lock-hold is in progress — the property the
    multi-process TCP serving mode depends on.  Pinned here: the mode is
    actually set (main database and every shard), survives a reopen, and
    streamed execution on a WAL store stays byte-identical to batched.
    """

    def _journal_mode(self, backend, schema_prefix=""):
        prefix = f"{schema_prefix}." if schema_prefix else ""
        return backend._conn.execute(
            f"PRAGMA {prefix}journal_mode"
        ).fetchone()[0]

    def test_sqlite_file_store_is_wal(self, tmp_path):
        db = build_mini_db("sqlite", db_path=tmp_path / "wal.db")
        try:
            assert self._journal_mode(db) == "wal"
        finally:
            db.close()

    def test_sharded_store_is_wal_on_every_partition(self, tmp_path):
        path = tmp_path / "sharded.db"
        db = ShardedSQLiteBackend(mini_schema(), path=path, shards=3)
        try:
            assert self._journal_mode(db) == "wal"
            for shard in range(3):
                assert self._journal_mode(db, db.dialect.shard_schema(shard)) == "wal"
        finally:
            db.close()

    def test_wal_survives_reopen(self, tmp_path):
        from repro.db.backends import create_backend

        path = tmp_path / "reopen.db"
        build_mini_db("sqlite", db_path=path).close()
        db = create_backend("sqlite", mini_schema(), path=path)  # reopen only
        try:
            assert self._journal_mode(db) == "wal"
        finally:
            db.close()

    def test_memory_stores_have_no_wal(self):
        # :memory: databases cannot WAL; the pragma must not even be tried
        # (SQLite would answer "memory" anyway, but the hook skips it).
        db = build_mini_db("sqlite")
        try:
            assert self._journal_mode(db) == "memory"
        finally:
            db.close()

    @pytest.mark.parametrize("backend,shards", [("sqlite", None), ("sqlite-sharded", 2)])
    def test_streamed_equals_batched_on_wal_store(self, tmp_path, backend, shards):
        """The streaming parity pin, re-run on a WAL-mode file store."""
        from repro.db.backends import create_backend

        kwargs = {"shards": shards} if shards else {}
        db = create_backend(
            backend, mini_schema(), path=tmp_path / "parity.db", **kwargs
        )
        try:
            for row_source in (build_mini_db("memory"),):
                for table in ("actor", "movie", "acts"):
                    for tup in row_source.relation(table).scan():
                        db.insert(table, dict(tup.values))
            db.build_indexes()
            assert db._conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
            for text in ("hanks 2001", "london", "2001"):
                specs = _specs(db, text)
                expected = db.execute_paths_batched(specs, limit=10)
                execution = db.execute_paths_streamed(specs, limit=10)
                assert _drain(execution, len(specs)) == expected.rows
        finally:
            db.close()
