"""Unit tests for repro.user.study (Fig. 3.7 timing model)."""

import pytest

from repro.user.study import StudyTimingModel


class TestRankingTask:
    def test_time_grows_with_rank(self):
        m = StudyTimingModel()
        assert m.ranking_task(10).seconds > m.ranking_task(1).seconds

    def test_rank_one(self):
        m = StudyTimingModel(ranking_seconds_per_entry=2.0, overhead_seconds=10.0)
        assert m.ranking_task(1).seconds == pytest.approx(12.0)

    def test_timeout_capped(self):
        m = StudyTimingModel(timeout_seconds=60.0, ranking_seconds_per_entry=10.0)
        outcome = m.ranking_task(100)
        assert outcome.timed_out
        assert outcome.seconds == 60.0

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            StudyTimingModel().ranking_task(0)


class TestConstructionTask:
    def test_zero_options(self):
        m = StudyTimingModel(overhead_seconds=15.0)
        assert m.construction_task(0).seconds == pytest.approx(15.0)

    def test_shortlist_scan_added(self):
        m = StudyTimingModel()
        with_scan = m.construction_task(3, shortlist_scanned=2).seconds
        without = m.construction_task(3).seconds
        assert with_scan > without

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            StudyTimingModel().construction_task(-1)

    def test_interface_labels(self):
        m = StudyTimingModel()
        assert m.ranking_task(1).interface == "ranking"
        assert m.construction_task(1).interface == "construction"


class TestCrossover:
    def test_ranking_wins_low_rank(self):
        """The Fig. 3.7 shape: ranking is faster when the intended query is
        near the top; construction is faster when it is buried."""
        m = StudyTimingModel()
        assert m.ranking_task(2).seconds < m.construction_task(4).seconds

    def test_construction_wins_high_rank(self):
        m = StudyTimingModel()
        assert m.construction_task(7, shortlist_scanned=2).seconds < m.ranking_task(
            120
        ).seconds
