"""Unit tests for repro.db.table (Relation/Tuple storage)."""

import pytest

from repro.db.errors import IntegrityError, UnknownAttributeError
from repro.db.schema import Attribute, Table
from repro.db.table import Relation


@pytest.fixture
def relation() -> Relation:
    return Relation(Table("actor", [Attribute("name")]))


class TestInsert:
    def test_insert_returns_tuple(self, relation):
        t = relation.insert({"id": 1, "name": "tom hanks"})
        assert t.key == 1
        assert t["name"] == "tom hanks"

    def test_auto_key_assignment(self, relation):
        t1 = relation.insert({"name": "a"})
        t2 = relation.insert({"name": "b"})
        assert t1.key != t2.key

    def test_auto_key_skips_taken(self, relation):
        relation.insert({"id": 0, "name": "a"})
        t = relation.insert({"name": "b"})
        assert t.key != 0

    def test_duplicate_key_rejected(self, relation):
        relation.insert({"id": 1, "name": "a"})
        with pytest.raises(IntegrityError):
            relation.insert({"id": 1, "name": "b"})

    def test_unknown_attribute_rejected(self, relation):
        with pytest.raises(UnknownAttributeError):
            relation.insert({"id": 1, "ghost": "x"})

    def test_missing_attribute_is_none(self, relation):
        t = relation.insert({"id": 1})
        assert t["name"] is None


class TestTupleAccess:
    def test_getitem_unknown_raises(self, relation):
        t = relation.insert({"id": 1, "name": "a"})
        with pytest.raises(KeyError):
            t["ghost"]

    def test_get_with_default(self, relation):
        t = relation.insert({"id": 1, "name": "a"})
        assert t.get("ghost", "dflt") == "dflt"

    def test_as_dict(self, relation):
        t = relation.insert({"id": 1, "name": "a"})
        assert t.as_dict() == {"id": 1, "name": "a"}

    def test_uid(self, relation):
        t = relation.insert({"id": 7, "name": "a"})
        assert t.uid == ("actor", 7)

    def test_tuples_hashable(self, relation):
        t = relation.insert({"id": 1, "name": "a"})
        assert len({t, t}) == 1


class TestLookupAndScan:
    def test_get_by_key(self, relation):
        relation.insert({"id": 5, "name": "x"})
        assert relation.get(5) is not None
        assert relation.get(99) is None

    def test_lookup_without_index(self, relation):
        relation.insert({"id": 1, "name": "a"})
        relation.insert({"id": 2, "name": "a"})
        relation.insert({"id": 3, "name": "b"})
        assert len(relation.lookup("name", "a")) == 2

    def test_lookup_with_index(self, relation):
        relation.insert({"id": 1, "name": "a"})
        relation.create_index("name")
        relation.insert({"id": 2, "name": "a"})
        assert len(relation.lookup("name", "a")) == 2

    def test_index_on_unknown_attribute(self, relation):
        with pytest.raises(UnknownAttributeError):
            relation.create_index("ghost")

    def test_index_rebuild_covers_existing_rows(self, relation):
        relation.insert({"id": 1, "name": "a"})
        relation.create_index("name")
        assert [t.key for t in relation.lookup("name", "a")] == [1]

    def test_scan_and_len(self, relation):
        for i in range(4):
            relation.insert({"id": i, "name": str(i)})
        assert len(relation) == 4
        assert len(list(relation.scan())) == 4
        assert len(list(iter(relation))) == 4
