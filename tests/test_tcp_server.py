"""The TCP listener: parity over the network, robustness, backpressure, drain.

The invariants under test:

* **Parity** — N concurrent TCP clients receive byte-identical result rows
  to sequential in-process execution, on the memory, sqlite and
  sqlite-sharded backends (the row-uid networks travel as JSON).
* **Robustness** — a malformed line, an oversized line, an unknown dataset
  or a client that disconnects mid-request errors exactly that one request:
  the connection (and the listener) keeps serving, and no engine is built
  or leaked for datasets the server does not serve.
* **Backpressure** — a saturated in-flight queue answers ``overloaded``
  *now* instead of queueing unboundedly (made deterministic with a gated
  engine), the connection cap answers ``too-many-connections``, and a
  request outliving the timeout answers ``timeout``.
* **Drain** — SIGTERM/drain lets in-flight requests complete and answer,
  refuses new connections at the kernel, and answers ``shutting-down`` on
  connections that stay open; the whole server process exits 0.

No pytest-asyncio: each test drives its own ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import socket
import threading

import pytest

from repro.engine import QueryEngine, ResultCache
from repro.net import protocol
from repro.net.listener import TCPQueryServer, TCPServerConfig
from repro.net.loadgen import spawn_tcp_server
from repro.server import QueryServer

QUERIES = ["hanks 2001", "london", "summer", "stone hill", "hanks", "2001"]


@pytest.fixture(autouse=True)
def fresh_process_cache():
    ResultCache.clear_process_cache()
    yield
    ResultCache.clear_process_cache()


@pytest.fixture
def imdb_factory(imdb_db):
    """An engine factory over the session-scoped imdb store (no rebuilds)."""

    def factory(dataset, backend, db_path, shards, config):
        kwargs = {} if config is None else {"config": config}
        return QueryEngine(imdb_db, **kwargs)

    return factory


@contextlib.asynccontextmanager
async def serving(factory, config=None, *, pool_workers=8, datasets=None):
    """An in-process listener over a fresh engine pool, drained on exit."""
    with QueryServer(max_workers=pool_workers, engine_factory=factory) as pool:
        tcp = TCPQueryServer(pool, config, datasets=datasets)
        await tcp.start()
        try:
            yield tcp
        finally:
            await tcp.drain()


async def connect(tcp):
    host, port = tcp.address
    return await asyncio.open_connection(host, port)


async def roundtrip(reader, writer, payload: bytes) -> dict:
    """One request line in, one parsed response line out."""
    writer.write(payload)
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), 30)
    assert line.endswith(b"\n"), f"connection closed mid-response: {line!r}"
    return json.loads(line)


async def ask(tcp, payload: bytes) -> dict:
    """One-shot connection: send one line, read one response, close."""
    reader, writer = await connect(tcp)
    try:
        return await roundtrip(reader, writer, payload)
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


def expected_wire_rows(engine: QueryEngine, text: str, k: int = 5):
    """The JSON form of sequential execution's result rows."""
    results = engine.run(text, k=k).results
    return [[[table, key] for table, key in result.row_uids()] for result in results]


class GatedEngine:
    """An engine whose ``run`` blocks until the test opens the gate."""

    def __init__(self, engine, gate: threading.Event):
        self._engine = engine
        self._gate = gate

    def run(self, *args, **kwargs):
        assert self._gate.wait(30), "gate never opened"
        return self._engine.run(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._engine, name)


class TestNetworkParity:
    def test_concurrent_clients_match_sequential(self, imdb_factory, imdb_db):
        reference = QueryEngine(imdb_db)
        expected = {text: expected_wire_rows(reference, text) for text in QUERIES}

        async def drive():
            async with serving(imdb_factory) as tcp:
                async def client(text):
                    reader, writer = await connect(tcp)
                    try:
                        answers = []
                        for _ in range(3):
                            answers.append(
                                await roundtrip(
                                    reader,
                                    writer,
                                    protocol.encode_request(text, k=5),
                                )
                            )
                        return text, answers
                    finally:
                        writer.close()
                        await writer.wait_closed()

                outcomes = await asyncio.gather(*(client(t) for t in QUERIES * 2))
                for text, answers in outcomes:
                    for payload in answers:
                        assert payload["ok"] is True, payload
                        assert payload["dataset"] == "imdb"
                        assert payload["rows"] == expected[text]
                        assert payload["stats"]["sql_statements"] >= 0
                assert tcp.stats.requests_served == len(QUERIES) * 2 * 3

        asyncio.run(drive())

    @pytest.mark.parametrize(
        "backend,shards", [("sqlite", None), ("sqlite-sharded", 2)]
    )
    def test_parity_on_file_backed_stores(self, tmp_path, imdb_db, backend, shards):
        """Network answers over WAL-mode file stores equal sequential memory
        execution (the cross-backend parity the suite pins elsewhere, here
        end to end through the socket)."""
        reference = QueryEngine(imdb_db)
        texts = QUERIES[:4]
        expected = {text: expected_wire_rows(reference, text) for text in texts}
        config = TCPServerConfig(
            backend=backend,
            db_path=str(tmp_path / "store.db"),
            shards=shards,
        )

        async def drive():
            # Default engine factory: the listener's prewarm builds the
            # dataset into the file store.
            with QueryServer(max_workers=4) as pool:
                tcp = TCPQueryServer(pool, config)
                await tcp.start()
                try:
                    payloads = await asyncio.gather(
                        *(
                            ask(tcp, protocol.encode_request(text, k=5))
                            for text in texts * 2
                        )
                    )
                    for text, payload in zip(texts * 2, payloads):
                        assert payload["ok"] is True, payload
                        assert payload["rows"] == expected[text]
                finally:
                    await tcp.drain()

        asyncio.run(drive())


class TestProtocolRobustness:
    def test_bad_requests_error_without_killing_the_connection(self, imdb_factory):
        async def drive():
            config = TCPServerConfig(max_request_bytes=256)
            async with serving(imdb_factory, config) as tcp:
                reader, writer = await connect(tcp)
                try:
                    bad = await roundtrip(reader, writer, b"not json\n")
                    assert bad == {
                        "ok": False,
                        "v": protocol.PROTOCOL_VERSION,
                        "error": protocol.ERR_MALFORMED,
                        "detail": bad["detail"],
                    }
                    bad = await roundtrip(reader, writer, b'{"k": 5}\n')
                    assert bad["error"] == protocol.ERR_MALFORMED
                    huge = b'{"query": "' + b"x" * 500 + b'"}\n'
                    bad = await roundtrip(reader, writer, huge)
                    assert bad["error"] == protocol.ERR_OVERSIZED
                    # Same connection still serves real queries afterwards.
                    good = await roundtrip(
                        reader, writer, protocol.encode_request("london")
                    )
                    assert good["ok"] is True
                    assert tcp.stats.protocol_errors == 3
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(drive())

    def test_unknown_dataset_is_refused_without_building_an_engine(
        self, imdb_factory
    ):
        async def drive():
            async with serving(imdb_factory) as tcp:
                assert tcp.server.pooled_engines == 1  # the prewarmed default
                payload = await ask(
                    tcp, protocol.encode_request("london", dataset="lyrics")
                )
                assert payload["ok"] is False
                assert payload["error"] == protocol.ERR_UNKNOWN_DATASET
                assert "lyrics" in payload["detail"]
                assert tcp.server.pooled_engines == 1  # nothing leaked
                good = await ask(
                    tcp, protocol.encode_request("london", dataset="imdb")
                )
                assert good["ok"] is True

        asyncio.run(drive())

    def test_mid_request_disconnect_leaves_server_serving(self, imdb_factory):
        async def drive():
            async with serving(imdb_factory) as tcp:
                reader, writer = await connect(tcp)
                writer.write(protocol.encode_request("hanks 2001"))
                await writer.drain()
                writer.close()  # gone before the answer can be written
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
                # The listener survives; a fresh client is served normally.
                payload = await ask(tcp, protocol.encode_request("london"))
                assert payload["ok"] is True
                # The abandoned request eventually leaves the books.
                for _ in range(500):
                    if tcp.inflight == 0:
                        break
                    await asyncio.sleep(0.01)
                assert tcp.inflight == 0

        asyncio.run(drive())

    def test_engine_failure_answers_internal_error(self, imdb_db):
        class Exploding:
            backend = imdb_db  # close() target for the pool

            def run(self, *args, **kwargs):
                raise RuntimeError("engine exploded")

        def factory(dataset, backend, db_path, shards, config):
            return Exploding()

        async def drive():
            async with serving(factory) as tcp:
                reader, writer = await connect(tcp)
                try:
                    payload = await roundtrip(
                        reader, writer, protocol.encode_request("london")
                    )
                    assert payload["ok"] is False
                    assert payload["error"] == protocol.ERR_INTERNAL
                    assert "engine exploded" in payload["detail"]
                    # The loop survived; the next request is answered too.
                    again = await roundtrip(
                        reader, writer, protocol.encode_request("london")
                    )
                    assert again["error"] == protocol.ERR_INTERNAL
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(drive())


class TestBackpressure:
    def test_connection_cap_rejects_explicitly(self, imdb_factory):
        async def drive():
            config = TCPServerConfig(max_connections=2)
            async with serving(imdb_factory, config) as tcp:
                first = await connect(tcp)
                second = await connect(tcp)
                reader, writer = await connect(tcp)  # one over the cap
                payload = json.loads(await asyncio.wait_for(reader.readline(), 30))
                assert payload["error"] == protocol.ERR_TOO_MANY_CONNECTIONS
                assert await reader.read() == b""  # and the socket is closed
                assert tcp.stats.connections_rejected == 1
                for r, w in (first, second):
                    answer = await roundtrip(r, w, protocol.encode_request("london"))
                    assert answer["ok"] is True
                    w.close()
                    await w.wait_closed()
                writer.close()

        asyncio.run(drive())

    def test_saturated_queue_answers_overloaded_not_hangs(self, imdb_db):
        gate = threading.Event()

        def factory(dataset, backend, db_path, shards, config):
            return GatedEngine(QueryEngine(imdb_db), gate)

        async def drive():
            config = TCPServerConfig(queue_limit=2)
            async with serving(factory, config, pool_workers=1) as tcp:
                connections = [await connect(tcp) for _ in range(3)]
                blocked = [
                    asyncio.ensure_future(
                        roundtrip(r, w, protocol.encode_request("london"))
                    )
                    for r, w in connections[:2]
                ]
                for _ in range(500):  # both admitted (one running, one queued)
                    if tcp.inflight == 2:
                        break
                    await asyncio.sleep(0.01)
                assert tcp.inflight == 2
                # The queue is full: the third request is rejected *now*.
                reader, writer = connections[2]
                rejected = await roundtrip(
                    reader, writer, protocol.encode_request("london")
                )
                assert rejected["error"] == protocol.ERR_OVERLOADED
                assert tcp.stats.requests_rejected_overload == 1
                gate.set()  # open the gate: the admitted two complete
                for payload in await asyncio.gather(*blocked):
                    assert payload["ok"] is True
                for _r, w in connections:
                    w.close()

        try:
            asyncio.run(drive())
        finally:
            gate.set()  # never leave pool workers blocked on a failed test

    def test_request_timeout_answers_timeout(self, imdb_db):
        gate = threading.Event()

        def factory(dataset, backend, db_path, shards, config):
            return GatedEngine(QueryEngine(imdb_db), gate)

        async def drive():
            config = TCPServerConfig(request_timeout=0.05, drain_timeout=30)
            async with serving(factory, config, pool_workers=1) as tcp:
                payload = await ask(tcp, protocol.encode_request("london"))
                assert payload["ok"] is False
                assert payload["error"] == protocol.ERR_TIMEOUT
                assert tcp.stats.requests_timed_out == 1
                gate.set()  # the worker finishes and discards off-path

        try:
            asyncio.run(drive())
        finally:
            gate.set()


class TestGracefulDrain:
    def test_drain_completes_inflight_and_refuses_new(self, imdb_db):
        gate = threading.Event()

        def factory(dataset, backend, db_path, shards, config):
            return GatedEngine(QueryEngine(imdb_db), gate)

        async def drive():
            config = TCPServerConfig(drain_timeout=30)
            async with serving(factory, config, pool_workers=2) as tcp:
                host, port = tcp.address
                inflight_reader, inflight_writer = await connect(tcp)
                open_reader, open_writer = await connect(tcp)  # idle but open
                pending = asyncio.ensure_future(
                    roundtrip(
                        inflight_reader,
                        inflight_writer,
                        protocol.encode_request("hanks 2001"),
                    )
                )
                for _ in range(500):
                    if tcp.inflight == 1:
                        break
                    await asyncio.sleep(0.01)
                assert tcp.inflight == 1

                drain = asyncio.ensure_future(tcp.drain())
                while not tcp.draining:
                    await asyncio.sleep(0.01)
                # New connections are refused at the kernel.
                with pytest.raises(OSError):
                    await asyncio.open_connection(host, port)
                # A request on an already-open connection answers the code.
                refused = await roundtrip(
                    open_reader, open_writer, protocol.encode_request("london")
                )
                assert refused["error"] == protocol.ERR_SHUTTING_DOWN
                # The in-flight request completes and answers.
                gate.set()
                answer = await pending
                assert answer["ok"] is True
                assert await drain is True
                open_writer.close()
                inflight_writer.close()

        try:
            asyncio.run(drive())
        finally:
            gate.set()

    def test_drain_timeout_reports_incomplete(self, imdb_db):
        gate = threading.Event()

        def factory(dataset, backend, db_path, shards, config):
            return GatedEngine(QueryEngine(imdb_db), gate)

        async def drive():
            config = TCPServerConfig(drain_timeout=0.1, request_timeout=None)
            with QueryServer(max_workers=1, engine_factory=factory) as pool:
                tcp = TCPQueryServer(pool, config)
                await tcp.start()
                reader, writer = await connect(tcp)
                writer.write(protocol.encode_request("london"))
                await writer.drain()
                for _ in range(500):
                    if tcp.inflight == 1:
                        break
                    await asyncio.sleep(0.01)
                completed = await tcp.drain()  # gate still closed
                assert completed is False
                gate.set()  # release the worker before pool.close()
                writer.close()

        try:
            asyncio.run(drive())
        finally:
            gate.set()


def _client_ask(host: str, port: int, payload: bytes, timeout: float = 30) -> dict:
    """Synchronous one-shot client for subprocess servers."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(payload)
        buffered = b""
        while not buffered.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffered += chunk
    return json.loads(buffered)


class TestServerProcess:
    """The real thing: ``repro serve --tcp`` as a subprocess."""

    def test_sigterm_drains_and_exits_zero(self):
        server = spawn_tcp_server()
        try:
            payload = _client_ask(
                server.host, server.port, protocol.encode_request("london", k=5)
            )
            assert payload["ok"] is True and payload["rows"]
        finally:
            assert server.terminate() == 0

    def test_multi_worker_serves_and_drains(self):
        server = spawn_tcp_server(workers=2)
        try:
            for text in QUERIES[:4]:
                payload = _client_ask(
                    server.host, server.port, protocol.encode_request(text, k=5)
                )
                assert payload["ok"] is True, payload
        finally:
            assert server.terminate() == 0

    def test_sigint_also_drains(self):
        server = spawn_tcp_server()
        try:
            payload = _client_ask(
                server.host, server.port, protocol.encode_request("london")
            )
            assert payload["ok"] is True
        finally:
            server.process.send_signal(signal.SIGINT)
            assert server.process.wait(30) == 0
