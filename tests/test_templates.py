"""Unit tests for repro.core.templates."""

import pytest

from repro.core.templates import QueryTemplate, generate_templates
from repro.db.schema import Attribute, Schema, Table


class TestQueryTemplate:
    def _template(self, mini_db):
        e1 = mini_db.schema.join_edges("actor", "acts")[0]
        e2 = mini_db.schema.join_edges("acts", "movie")[0]
        return QueryTemplate(path=("actor", "acts", "movie"), edges=(e1, e2))

    def test_size(self, mini_db):
        assert self._template(mini_db).size == 2

    def test_single_table(self):
        t = QueryTemplate(path=("actor",), edges=())
        assert t.size == 0
        assert t.leaf_positions() == (0,)

    def test_leaf_positions(self, mini_db):
        assert self._template(mini_db).leaf_positions() == (0, 2)

    def test_positions_of(self, mini_db):
        t = self._template(mini_db)
        assert t.positions_of("acts") == [1]
        assert t.positions_of("ghost") == []

    def test_positions_of_self_join(self, mini_db):
        e1 = mini_db.schema.join_edges("actor", "acts")[0]
        e2 = mini_db.schema.join_edges("acts", "movie")[0]
        t = QueryTemplate(
            path=("actor", "acts", "movie", "acts", "actor"), edges=(e1, e2, e2, e1)
        )
        assert t.positions_of("actor") == [0, 4]

    def test_identifier_distinct_per_edge(self):
        s = Schema()
        s.add_table(Table("person", ["name"]))
        s.add_table(Table("movie", ["title"]))
        s.link("movie", "person", source_attr="director_id")
        s.link("movie", "person", source_attr="producer_id")
        fk1, fk2 = s.join_edges("movie", "person")
        t1 = QueryTemplate(("movie", "person"), (fk1,))
        t2 = QueryTemplate(("movie", "person"), (fk2,))
        assert t1.identifier != t2.identifier

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            QueryTemplate(path=("a", "b"), edges=())

    def test_empty_path(self):
        with pytest.raises(ValueError):
            QueryTemplate(path=(), edges=())

    def test_contains_table(self, mini_db):
        t = self._template(mini_db)
        assert t.contains_table("movie")
        assert not t.contains_table("ghost")


class TestGenerateTemplates:
    def test_single_table_templates_included(self, mini_db):
        templates = generate_templates(mini_db.schema, max_joins=2)
        paths = {t.path for t in templates}
        assert ("actor",) in paths

    def test_actor_movie_chain_included(self, mini_db):
        templates = generate_templates(mini_db.schema, max_joins=2)
        paths = {t.path for t in templates}
        assert ("actor", "acts", "movie") in paths or ("movie", "acts", "actor") in paths

    def test_max_joins_respected(self, mini_db):
        for t in generate_templates(mini_db.schema, max_joins=2, include_self_joins=False):
            assert t.size <= 2

    def test_self_join_palindromes(self, mini_db):
        templates = generate_templates(mini_db.schema, max_joins=4)
        paths = {t.path for t in templates}
        assert ("actor", "acts", "movie", "acts", "actor") in paths or (
            "movie",
            "acts",
            "actor",
            "acts",
            "movie",
        ) in paths

    def test_self_joins_can_be_disabled(self, mini_db):
        templates = generate_templates(mini_db.schema, max_joins=4, include_self_joins=False)
        for t in templates:
            assert len(set(t.path)) == len(t.path)

    def test_edge_variants_capped(self):
        s = Schema()
        s.add_table(Table("person", ["name"]))
        s.add_table(Table("movie", ["title"]))
        for attr in ("a_id", "b_id", "c_id", "d_id", "e_id"):
            s.table("movie").attributes[attr] = Attribute(attr, textual=False)
            from repro.db.schema import ForeignKey

            s.add_foreign_key(ForeignKey("movie", attr, "person", "id"))
        templates = generate_templates(s, max_joins=1, max_edge_variants=3)
        two_table = [t for t in templates if len(t.path) == 2]
        assert len(two_table) <= 3

    def test_deterministic_order(self, mini_db):
        a = generate_templates(mini_db.schema, max_joins=3)
        b = generate_templates(mini_db.schema, max_joins=3)
        assert [t.identifier for t in a] == [t.identifier for t in b]

    def test_sorted_by_size(self, mini_db):
        sizes = [t.size for t in generate_templates(mini_db.schema, max_joins=3)]
        assert sizes == sorted(sizes)
