"""Unit tests for repro.db.tokenizer."""

import pytest

from repro.db.tokenizer import DEFAULT_STOPWORDS, Tokenizer, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hanks Terminal") == ["hanks", "terminal"]

    def test_splits_punctuation(self):
        assert tokenize("o'brien, jr.") == ["o", "brien", "jr"]

    def test_keeps_digits(self):
        assert tokenize("Movie 2001") == ["movie", "2001"]

    def test_alphanumeric_tokens_survive(self):
        assert tokenize("r2d2") == ["r2d2"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \t\n") == []

    def test_duplicates_preserved(self):
        assert tokenize("la la land") == ["la", "la", "land"]

    def test_non_string_coerced(self):
        assert Tokenizer().tokens(2001) == ["2001"]  # type: ignore[arg-type]

    def test_none_like_empty(self):
        assert Tokenizer().tokens("") == []


class TestStopwords:
    def test_default_tokenizer_keeps_stopwords(self):
        # DB keyword search matches values verbatim; "the" may be meaningful.
        assert tokenize("the terminal") == ["the", "terminal"]

    def test_stopword_removal_when_configured(self):
        t = Tokenizer(stopwords=DEFAULT_STOPWORDS)
        assert t.tokens("the terminal") == ["terminal"]

    def test_all_stopwords_yields_empty(self):
        t = Tokenizer(stopwords=DEFAULT_STOPWORDS)
        assert t.tokens("the and of") == []


class TestStemming:
    def test_stemming_off_by_default(self):
        assert tokenize("running") == ["running"]

    def test_light_stem_ing(self):
        t = Tokenizer(stem=True)
        assert t.tokens("running") == ["runn"]

    def test_light_stem_plural(self):
        t = Tokenizer(stem=True)
        assert t.tokens("movies") == ["movy"]

    def test_stem_keeps_short_tokens(self):
        t = Tokenizer(stem=True)
        assert t.tokens("is") == ["is"]


class TestTerms:
    def test_terms_deduplicate(self):
        assert Tokenizer().terms("la la land") == {"la", "land"}

    def test_terms_empty(self):
        assert Tokenizer().terms("") == set()


class TestImmutability:
    def test_tokenizer_is_frozen(self):
        t = Tokenizer()
        with pytest.raises(AttributeError):
            t.stem = True  # type: ignore[misc]
