"""Unit tests for repro.yagof (instance ontology, matching, analysis)."""

import pytest

from repro.datasets.yago_synth import build_aligned_tables, build_yago, build_yago_and_tables
from repro.yagof.analysis import (
    category_size_distribution,
    instance_level_distribution,
    shared_instance_distribution,
    yagof_summary,
)
from repro.yagof.matching import MatchConfig, match_tables, threshold_sweep
from repro.yagof.ontology import InstanceOntology


@pytest.fixture
def small_ontology() -> InstanceOntology:
    o = InstanceOntology()
    o.add_class("person")
    o.add_class("person/actors", "person")
    o.add_class("person/writers", "person")
    o.add_instances("person/actors", {"a1", "a2", "a3"})
    o.add_instances("person/writers", {"w1", "w2"})
    return o


class TestInstanceOntology:
    def test_root(self):
        o = InstanceOntology()
        assert InstanceOntology.ROOT in o

    def test_duplicate_class_rejected(self, small_ontology):
        with pytest.raises(ValueError):
            small_ontology.add_class("person")

    def test_unknown_parent_rejected(self):
        with pytest.raises(KeyError):
            InstanceOntology().add_class("x", "ghost")

    def test_transitive_instances(self, small_ontology):
        assert small_ontology.instances_of("person") == {"a1", "a2", "a3", "w1", "w2"}

    def test_direct_instances(self, small_ontology):
        assert small_ontology.direct_instances("person") == set()

    def test_levels_and_leaves(self, small_ontology):
        assert small_ontology.level_of("person/actors") == 2
        assert small_ontology.depth() == 2
        assert small_ontology.leaves() == ["person/actors", "person/writers"]

    def test_all_instances(self, small_ontology):
        assert len(small_ontology.all_instances()) == 5


class TestMatching:
    def test_clean_table_matches_true_class(self, small_ontology):
        tables = {"t_actors": {"a1", "a2", "a3"}}
        m = match_tables(small_ontology, tables, MatchConfig(threshold=0.5))
        cls, score, shared = m.assignments["t_actors"]
        assert cls == "person/actors"
        assert score == 1.0
        assert shared == frozenset({"a1", "a2", "a3"})

    def test_most_specific_class_wins(self, small_ontology):
        """A table of actors matches person/actors, not the coarser person."""
        tables = {"t": {"a1", "a2"}}
        m = match_tables(small_ontology, tables, MatchConfig(threshold=0.5))
        assert m.assignments["t"][0] == "person/actors"

    def test_noisy_table_unmatched_at_high_threshold(self, small_ontology):
        tables = {"t": {"a1", "x1", "x2", "x3", "x4"}}
        m = match_tables(small_ontology, tables, MatchConfig(threshold=0.5, min_shared=1))
        assert "t" in m.unmatched

    def test_min_shared_guard(self, small_ontology):
        tables = {"tiny": {"a1"}}
        m = match_tables(small_ontology, tables, MatchConfig(threshold=0.1, min_shared=2))
        assert "tiny" in m.unmatched

    def test_empty_table_unmatched(self, small_ontology):
        m = match_tables(small_ontology, {"empty": set()})
        assert "empty" in m.unmatched

    def test_mixed_table_prefers_majority_class(self, small_ontology):
        tables = {"t": {"a1", "a2", "a3", "w1"}}
        m = match_tables(small_ontology, tables, MatchConfig(threshold=0.5))
        assert m.assignments["t"][0] == "person/actors"

    def test_to_hierarchy(self, small_ontology):
        tables = {"t_actors": {"a1", "a2"}}
        m = match_tables(small_ontology, tables, MatchConfig(threshold=0.5))
        h = m.to_hierarchy(small_ontology)
        assert h.attached_tables() == {"t_actors"}
        assert "person/actors" in h.classes_with_tables()


class TestPrecisionRecall:
    def test_perfect_on_clean_alignment(self):
        yago = build_yago(seed=11)
        data = build_aligned_tables(
            yago,
            seed=12,
            n_tables=30,
            rows_per_table=5,
            noise_fraction=0.0,
            overlap_fraction=1.0,
        )
        m = match_tables(data.ontology, data.tables, MatchConfig(threshold=0.5))
        precision, recall = m.precision_recall(data.ground_truth, data.ontology)
        assert precision >= 0.9
        assert recall >= 0.9

    def test_recall_falls_with_threshold(self):
        data = build_yago_and_tables(seed=13, n_tables=40)
        rows = threshold_sweep(
            data.ontology, data.tables, data.ground_truth, [0.2, 0.5, 0.8, 0.95]
        )
        recalls = [r for _t, _p, r in rows]
        assert recalls == sorted(recalls, reverse=True)

    def test_bounds(self):
        data = build_yago_and_tables(seed=17, n_tables=20)
        for _t, p, r in threshold_sweep(
            data.ontology, data.tables, data.ground_truth, [0.1, 0.5, 0.9]
        ):
            assert 0.0 <= p <= 1.0 and 0.0 <= r <= 1.0


class TestAnalysis:
    def test_category_distribution_covers_all_classes(self, small_ontology):
        rows = category_size_distribution(small_ontology, buckets=(1, 5, 10))
        assert sum(n for _label, n in rows) == len(small_ontology)

    def test_heavy_tail_shape(self):
        """Most synthetic YAGO leaf categories are small (Table 6.1 shape)."""
        yago = build_yago(seed=41)
        rows = dict(category_size_distribution(yago))
        small = rows.get("<= 5", 0) + rows.get("<= 10", 0) + rows.get("<= 2", 0) + rows.get("<= 1", 0)
        large = rows.get("> 1000", 0)
        assert small > large

    def test_instance_level_distribution(self):
        yago = build_yago(seed=41)
        rows = instance_level_distribution(yago)
        # Instances live at the leaves (deepest level).
        deepest = rows[-1]
        assert deepest[2] > 0
        assert rows[0][2] == 0

    def test_shared_instance_distribution(self):
        tables = {"t1": {"a", "b"}, "t2": {"b", "c"}, "t3": {"b"}}
        rows = dict(shared_instance_distribution(tables))
        assert rows[1] == 2  # a and c occur in one table
        assert rows[3] == 1  # b occurs in three tables

    def test_shared_restriction(self):
        tables = {"t1": {"a", "x"}, "t2": {"a"}}
        rows = dict(shared_instance_distribution(tables, shared_instances={"a"}))
        assert rows == {2: 1}

    def test_yagof_summary_counts(self):
        data = build_yago_and_tables(seed=19, n_tables=15)
        m = match_tables(data.ontology, data.tables, MatchConfig(threshold=0.5))
        summary = yagof_summary(m.to_hierarchy(data.ontology))
        assert summary["attached_tables"] == len(m.assignments)
        assert summary["yago_classes"] == len(data.ontology)
        assert summary["shared_instances"] > 0


class TestSyntheticGenerators:
    def test_yago_deterministic(self):
        a = build_yago(seed=5)
        b = build_yago(seed=5)
        assert a.class_names() == b.class_names()
        assert len(a.all_instances()) == len(b.all_instances())

    def test_aligned_tables_ground_truth_complete(self):
        data = build_yago_and_tables(seed=7, n_tables=12)
        assert set(data.tables) == set(data.ground_truth)

    def test_overlap_fraction_respected(self):
        yago = build_yago(seed=9)
        data = build_aligned_tables(yago, seed=10, n_tables=10, overlap_fraction=0.9)
        for table, instances in data.tables.items():
            true_class = data.ground_truth[table]
            shared = instances & yago.instances_of(true_class)
            assert len(shared) >= 2
